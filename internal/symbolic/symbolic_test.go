package symbolic

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

// naiveETree computes the elimination tree by the defining property:
// parent(v) = min{ i > v : i ∈ struct(col v of the filled pattern) },
// obtained by explicitly simulating symbolic elimination.
func naiveETree(g *graph.Graph) []int {
	n := g.N
	// adjacency sets, grown by fill
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
	}
	for v := 0; v < n; v++ {
		nbrs, _ := g.Neighbors(v)
		for _, u := range nbrs {
			adj[v][u] = true
		}
	}
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	for v := 0; v < n; v++ {
		// neighbors of v greater than v at elimination time
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		if len(higher) == 0 {
			continue
		}
		min := higher[0]
		for _, u := range higher {
			if u < min {
				min = u
			}
		}
		parent[v] = min
		// eliminate v: clique its higher neighbors
		for _, a := range higher {
			for _, b := range higher {
				if a != b {
					adj[a][b] = true
				}
			}
		}
	}
	return parent
}

func TestETreeMatchesNaive(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Grid2D(5, 5, gen.WeightUnit, 1),
		gen.GeometricKNN(60, 2, 3, gen.WeightUnit, 2),
		gen.ErdosRenyi(50, 4, gen.WeightUnit, 3),
		graph.MustFromEdges(4, nil), // edgeless
	}
	for gi, g := range graphs {
		want := naiveETree(g)
		got := ETree(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("graph %d: parent[%d]=%d, want %d", gi, v, got[v], want[v])
			}
		}
	}
}

func TestPostorderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		// Random forest: parent[v] > v or -1.
		n := 3 + rng.Intn(40)
		parent := make([]int, n)
		for v := 0; v < n; v++ {
			if v == n-1 || rng.Float64() < 0.2 {
				parent[v] = -1
			} else {
				parent[v] = v + 1 + rng.Intn(n-v-1)
			}
		}
		post := Postorder(parent)
		if !graph.IsPermutation(post) {
			t.Fatal("postorder is not a permutation")
		}
		// In the relabeled tree, every parent must come after the child
		// and subtrees must be contiguous.
		np := RelabelParent(parent, post)
		size := make([]int, n)
		for i := range size {
			size[i] = 1
		}
		for v := 0; v < n; v++ {
			if p := np[v]; p >= 0 {
				if p <= v {
					t.Fatal("postorder violated: parent before child")
				}
				size[p] += size[v]
			}
		}
		// Contiguity: subtree of v is exactly [v-size[v]+1, v].
		for v := 0; v < n; v++ {
			lo := v - size[v] + 1
			for u := lo; u < v; u++ {
				// u's root-ward path must hit v before passing it
				x := u
				for x >= 0 && x < v {
					x = np[x]
				}
				if x != v {
					t.Fatalf("vertex %d in [%d,%d] is not in subtree of %d", u, lo, v, v)
				}
			}
		}
	}
}

func TestPostorderIdentityOnPostordered(t *testing.T) {
	// A path tree 0→1→2→…: already a postorder.
	parent := []int{1, 2, 3, -1}
	post := Postorder(parent)
	for i, v := range post {
		if i != v {
			t.Fatalf("postorder of a postordered chain must be identity, got %v", post)
		}
	}
}

// naiveFill computes fill by elimination simulation (same as naiveETree).
func naiveFill(g *graph.Graph) [][]int {
	n := g.N
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int]bool{}
		nbrs, _ := g.Neighbors(v)
		for _, u := range nbrs {
			adj[v][u] = true
		}
	}
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		var higher []int
		for u := range adj[v] {
			if u > v {
				higher = append(higher, u)
			}
		}
		for _, a := range higher {
			for _, b := range higher {
				if a != b {
					adj[a][b] = true
				}
			}
		}
		out[v] = higher
	}
	return out
}

func TestFillMatchesNaive(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Grid2D(6, 4, gen.WeightUnit, 5),
		gen.ErdosRenyi(40, 3, gen.WeightUnit, 6),
		gen.GeometricKNN(50, 2, 3, gen.WeightUnit, 7),
	}
	for gi, g := range graphs {
		parent := ETree(g)
		got := Fill(g, parent)
		want := naiveFill(g)
		for j := 0; j < g.N; j++ {
			if len(got[j]) != len(want[j]) {
				t.Fatalf("graph %d col %d: fill size %d, want %d", gi, j, len(got[j]), len(want[j]))
			}
			wantSet := map[int]bool{}
			for _, i := range want[j] {
				wantSet[i] = true
			}
			for _, i := range got[j] {
				if !wantSet[int(i)] {
					t.Fatalf("graph %d col %d: spurious fill row %d", gi, j, i)
				}
			}
		}
	}
}

func TestFromETreeSupernodes(t *testing.T) {
	// A dense-ish band graph postordered: expect chains to merge.
	g := gen.GeometricKNN(120, 2, 4, gen.WeightUnit, 8)
	bfs := order.BFS(g)
	pg1 := g.Permute(bfs.Perm)
	parent := ETree(pg1)
	post := Postorder(parent)
	perm := make([]int, g.N)
	for i, pi := range post {
		perm[i] = bfs.Perm[pi]
	}
	pg := g.Permute(perm)
	parent = RelabelParent(parent, post)
	structs := Fill(pg, parent)
	sn := FromETree(parent, ColCounts(structs), 16)
	if msg := sn.Check(); msg != "" {
		t.Fatalf("supernode check: %s", msg)
	}
	if sn.N() != g.N {
		t.Fatalf("supernodes cover %d of %d", sn.N(), g.N)
	}
	for _, r := range sn.Ranges {
		if r.Size() > 16 {
			t.Fatalf("supernode size %d exceeds maxBlock", r.Size())
		}
	}
	// Fundamental property: within a supernode, each vertex's etree
	// parent is the next vertex.
	for _, r := range sn.Ranges {
		for v := r.Lo; v < r.Hi-1; v++ {
			if parent[v] != v+1 {
				t.Fatalf("vertex %d inside supernode has parent %d, want %d", v, parent[v], v+1)
			}
		}
	}
}

func TestFromTreeSupernodes(t *testing.T) {
	g := gen.Grid2D(20, 20, gen.WeightUnit, 9)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 25})
	sn := FromTree(ord.Tree, g.N, 8)
	if msg := sn.Check(); msg != "" {
		t.Fatalf("supernode check: %s", msg)
	}
	if sn.N() != g.N {
		t.Fatalf("cover %d of %d", sn.N(), g.N)
	}
	for _, r := range sn.Ranges {
		if r.Size() > 8 {
			t.Fatal("maxBlock violated")
		}
	}
	// Chain splitting: number of supernodes must exceed tree nodes when
	// blocks are small.
	if len(sn.Ranges) <= len(ord.Tree) {
		t.Error("expected split chains with maxBlock=8")
	}
}

func TestAncestorsChain(t *testing.T) {
	g := gen.Grid2D(12, 12, gen.WeightUnit, 10)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 12})
	sn := FromTree(ord.Tree, g.N, 16)
	for k := range sn.Ranges {
		anc := sn.Ancestors(k)
		// ancestors strictly increase and end at a root
		prev := k
		for _, a := range anc {
			if a <= prev {
				t.Fatal("ancestors must strictly increase")
			}
			prev = a
		}
		if len(anc) > 0 {
			last := anc[len(anc)-1]
			if sn.Parent[last] != -1 {
				t.Fatal("ancestor walk must end at a root")
			}
		} else if sn.Parent[k] != -1 {
			t.Fatal("non-root with empty ancestors")
		}
	}
}

func TestLevelsAreCousins(t *testing.T) {
	g := gen.GeometricKNN(400, 2, 4, gen.WeightUnit, 11)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 24})
	sn := FromTree(ord.Tree, g.N, 32)
	for _, level := range sn.Levels {
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				// descendant ranges [SubLo, Hi) must be disjoint
				aLo, aHi := sn.SubLo[a], sn.Ranges[a].Hi
				bLo, bHi := sn.SubLo[b], sn.Ranges[b].Hi
				if aLo < bHi && bLo < aHi {
					t.Fatalf("level peers %d and %d have overlapping subtrees", a, b)
				}
			}
		}
	}
}

func TestFillCountAndColCounts(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUnit, 12)
	parent := ETree(g)
	structs := Fill(g, parent)
	counts := ColCounts(structs)
	var sum int64
	for _, c := range counts {
		sum += int64(c)
	}
	if FillCount(structs) != sum {
		t.Fatal("FillCount must equal the sum of column counts")
	}
	if sum < int64(g.M()) {
		t.Fatalf("fill %d must be at least the edge count %d", sum, g.M())
	}
}

func TestNewSupernodesRoundTrip(t *testing.T) {
	g := gen.GeometricKNN(200, 2, 3, gen.WeightUnit, 13)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 24})
	sn := FromTree(ord.Tree, g.N, 16)
	rebuilt := New(sn.Ranges, sn.Parent, sn.SubLo)
	if msg := rebuilt.Check(); msg != "" {
		t.Fatalf("rebuilt supernodes invalid: %s", msg)
	}
	if rebuilt.N() != sn.N() || rebuilt.NumSupernodes() != sn.NumSupernodes() {
		t.Fatal("round trip changed shape")
	}
	if len(rebuilt.Levels) != len(sn.Levels) {
		t.Fatal("levels not recomputed identically")
	}
	for i := range sn.Levels {
		if len(rebuilt.Levels[i]) != len(sn.Levels[i]) {
			t.Fatal("level widths differ")
		}
	}
}

func TestFromETreeChainsMergesChains(t *testing.T) {
	// A path graph in natural order: one maximal chain → supernodes are
	// consecutive blocks of exactly maxBlock.
	n := 40
	parent := make([]int, n)
	for i := 0; i < n-1; i++ {
		parent[i] = i + 1
	}
	parent[n-1] = -1
	sn := FromETreeChains(parent, 8)
	if msg := sn.Check(); msg != "" {
		t.Fatal(msg)
	}
	if len(sn.Ranges) != 5 {
		t.Fatalf("expected 5 chain blocks of 8, got %d", len(sn.Ranges))
	}
	for _, r := range sn.Ranges {
		if r.Size() != 8 {
			t.Fatalf("chain block size %d, want 8", r.Size())
		}
	}
}

func TestSupernodalStructExactness(t *testing.T) {
	// Against brute force: block (a,k) is in the supernodal fill iff
	// some vertex pair (i∈k, j∈a) is in the vertex-level fill.
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUnit, 14)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 16})
	pg := g.Permute(ord.Perm)
	sn := FromTree(ord.Tree, g.N, 8)
	got := SupernodalStruct(pg, sn)

	parent := ETree(pg)
	structs := Fill(pg, parent)
	snOf := make([]int, g.N)
	for k, r := range sn.Ranges {
		for v := r.Lo; v < r.Hi; v++ {
			snOf[v] = k
		}
	}
	want := make([]map[int]bool, len(sn.Ranges))
	for i := range want {
		want[i] = map[int]bool{}
	}
	for j := 0; j < g.N; j++ {
		for _, i := range structs[j] {
			if a, k := snOf[i], snOf[j]; a != k {
				want[k][a] = true
			}
		}
	}
	for k := range sn.Ranges {
		gotSet := map[int]bool{}
		for _, a := range got[k] {
			gotSet[int(a)] = true
		}
		for a := range want[k] {
			if !gotSet[a] {
				t.Fatalf("supernode %d: missing struct member %d", k, a)
			}
		}
		for a := range gotSet {
			if !want[k][a] {
				t.Fatalf("supernode %d: spurious struct member %d", k, a)
			}
		}
	}
}

func TestSupernodeChildCountsLeavesLevels(t *testing.T) {
	g := gen.GeometricKNN(300, 2, 4, gen.WeightUnit, 12)
	ord := order.NestedDissection(g, order.NDOptions{LeafSize: 20})
	sn := FromTree(ord.Tree, g.N, 24)
	counts := sn.ChildCounts()
	if len(counts) != sn.NumSupernodes() {
		t.Fatalf("ChildCounts length %d, want %d", len(counts), sn.NumSupernodes())
	}
	want := make([]int, sn.NumSupernodes())
	leaves := 0
	for _, p := range sn.Parent {
		if p >= 0 {
			want[p]++
		}
	}
	for k, c := range counts {
		if c != want[k] {
			t.Fatalf("supernode %d: ChildCounts %d, want %d", k, c, want[k])
		}
		if c == 0 {
			leaves++
		}
	}
	if got := sn.NumLeaves(); got != leaves {
		t.Fatalf("NumLeaves %d, want %d", got, leaves)
	}
	// LevelOf must invert Levels, and children must sit strictly below
	// their parents.
	lo := sn.LevelOf()
	for li, level := range sn.Levels {
		for _, k := range level {
			if lo[k] != li {
				t.Fatalf("supernode %d: LevelOf %d, want %d", k, lo[k], li)
			}
		}
	}
	for k, p := range sn.Parent {
		if p >= 0 && lo[k] >= lo[p] {
			t.Fatalf("child %d at level %d, parent %d at level %d", k, lo[k], p, lo[p])
		}
	}
}
