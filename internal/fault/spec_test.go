package fault

// Parsing-focused coverage for the KIND[=ARG][@HIT] failpoint grammar:
// the SUPERFW_FAULTPOINTS env var is parsed by init() at process start,
// where a bad spec is fatal — so every malformed shape must be rejected
// by parseSpec/EnableAll with a diagnosable error, and every accepted
// shape must arm exactly what it says.

import (
	"testing"
	"time"
)

func TestParseSpecAccepts(t *testing.T) {
	cases := []struct {
		spec  string
		kind  kind
		arg   time.Duration
		limit int
		hit   int
	}{
		{"panic", kindPanic, 0, 0, 0},
		{"panic@1", kindPanic, 0, 0, 1},
		{"panic@3", kindPanic, 0, 0, 3},
		{"  panic@3  ", kindPanic, 0, 0, 3}, // surrounding space is trimmed
		{"sleep=5ms", kindSleep, 5 * time.Millisecond, 0, 0},
		{"sleep=1h2m@7", kindSleep, time.Hour + 2*time.Minute, 0, 7},
		{"error", kindError, 0, 0, 0},
		{"error@2", kindError, 0, 0, 2},
		{"shortwrite=0", kindShortWrite, 0, 0, 0}, // zero-byte writes are a valid torn-write model
		{"shortwrite=64@2", kindShortWrite, 0, 64, 2},
		{"torn=0", kindTorn, 0, 0, 0}, // tear before any byte of the firing write lands
		{"torn=16", kindTorn, 0, 16, 0},
		{"torn=64@2", kindTorn, 0, 64, 2},
		{"exit=0", kindExit, 0, 0, 0}, // a clean exit mid-flight is still a process death
		{"exit=137", kindExit, 0, 137, 0},
		{"exit=7@4", kindExit, 0, 7, 4},
	}
	for _, tc := range cases {
		p, err := parseSpec(tc.spec)
		if err != nil {
			t.Errorf("parseSpec(%q): %v", tc.spec, err)
			continue
		}
		if p.kind != tc.kind || p.arg != tc.arg || p.limit != tc.limit || p.hit != tc.hit {
			t.Errorf("parseSpec(%q) = kind=%d arg=%v limit=%d hit=%d, want kind=%d arg=%v limit=%d hit=%d",
				tc.spec, p.kind, p.arg, p.limit, p.hit, tc.kind, tc.arg, tc.limit, tc.hit)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, spec := range []string{
		"",              // empty spec
		"explode",       // unknown kind
		"panic@",        // missing hit count
		"panic@0",       // hit counts are 1-based
		"panic@-2",      // negative hit
		"panic@two",     // non-numeric hit
		"sleep",         // missing duration
		"sleep=",        // empty duration
		"sleep=fast",    // unparseable duration
		"shortwrite",    // missing limit
		"shortwrite=",   // empty limit
		"shortwrite=-1", // negative limit
		"shortwrite=4k", // non-numeric limit
		"torn",          // missing limit
		"torn=",         // empty limit
		"torn=-1",       // negative limit
		"torn=4k",       // non-numeric limit
		"panic=now",     // panic takes no argument
		"error=oops",    // error takes no argument
		"error=oops@@3", // argument-free kind with junk arg and doubled trigger
		"exit",          // missing exit code
		"exit=",         // empty exit code
		"exit=-1",       // negative exit code
		"exit=256",      // exit codes are a byte
		"exit=13s",      // non-numeric exit code
	} {
		if p, err := parseSpec(spec); err == nil {
			t.Errorf("parseSpec(%q) accepted as %+v, want error", spec, p)
		}
	}
}

func TestEnableAllEmptyAndBlankEntries(t *testing.T) {
	defer Reset()
	// An unset env var means EnableAll never runs, but an explicitly empty
	// or comma-only value must be a no-op, not an error.
	for _, list := range []string{"", " ", ",", " , ,, "} {
		if err := EnableAll(list); err != nil {
			t.Errorf("EnableAll(%q): %v", list, err)
		}
		if n := armed.Load(); n != 0 {
			t.Errorf("EnableAll(%q) armed %d points", list, n)
		}
	}
	// Blank entries mixed into a valid list are skipped.
	if err := EnableAll(" , a=panic , "); err != nil {
		t.Fatal(err)
	}
	if n := armed.Load(); n != 1 {
		t.Fatalf("armed %d points, want 1", n)
	}
}

func TestEnableAllBadEntryShapes(t *testing.T) {
	defer Reset()
	for _, list := range []string{
		"panic",             // bare spec with no point name
		"a=panic,b",         // second entry lacks '=' separator
		"a=panic,b=explode", // second entry has unknown kind
	} {
		if err := EnableAll(list); err == nil {
			t.Errorf("EnableAll(%q) succeeded, want error", list)
		}
	}
}

func TestEnableDuplicatePointReplaces(t *testing.T) {
	defer Reset()
	if err := Enable("dup", "error"); err != nil {
		t.Fatal(err)
	}
	if err := InjectErr("dup"); err == nil {
		t.Fatal("first arming should fire")
	}
	// Re-arming the same name must replace the spec (sleep, not error),
	// reset the visit counter, and leave the armed count at 1 — the
	// fast-path gate must not drift when a test re-arms a point.
	if err := Enable("dup", "sleep=1ms"); err != nil {
		t.Fatal(err)
	}
	if n := armed.Load(); n != 1 {
		t.Fatalf("armed count %d after duplicate Enable, want 1", n)
	}
	if v := Visits("dup"); v != 0 {
		t.Fatalf("replacement arming inherited %d visits, want 0", v)
	}
	if err := InjectErr("dup"); err != nil {
		t.Fatalf("replaced spec still returns the old error: %v", err)
	}
	// Disable must fully disarm despite the double Enable.
	Disable("dup")
	if n := armed.Load(); n != 0 {
		t.Fatalf("armed count %d after Disable, want 0", n)
	}
}

func TestEnableAllDuplicateNamesLastWins(t *testing.T) {
	defer Reset()
	// The env format allows the same point twice; later entries replace
	// earlier ones, matching Enable's documented semantics.
	if err := EnableAll("p=error,p=sleep=1ms"); err != nil {
		t.Fatal(err)
	}
	if n := armed.Load(); n != 1 {
		t.Fatalf("armed count %d, want 1", n)
	}
	if err := InjectErr("p"); err != nil {
		t.Fatalf("last-wins spec should be sleep, got error %v", err)
	}
}

func TestHitTriggerFiresExactlyOnce(t *testing.T) {
	defer Reset()
	if err := Enable("h", "error@3"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 6; i++ {
		if InjectErr("h") != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("@3 trigger fired %d times over 6 visits, want exactly 1", fired)
	}
	if v := Visits("h"); v != 6 {
		t.Fatalf("visit counter %d, want 6 (non-firing visits still count)", v)
	}
}
