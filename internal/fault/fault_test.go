package fault

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestInjectPanicOnNthVisit(t *testing.T) {
	defer Reset()
	if err := Enable("p", "panic@3"); err != nil {
		t.Fatal(err)
	}
	Inject("p") // visit 1
	Inject("p") // visit 2
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("visit 3 should panic")
		}
		if !strings.Contains(r.(string), `injected panic at "p"`) {
			t.Fatalf("panic value %v lacks point name", r)
		}
	}()
	Inject("p") // visit 3: fires
}

func TestInjectSleep(t *testing.T) {
	defer Reset()
	if err := Enable("s", "sleep=30ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	Inject("s")
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("sleep failpoint only slept %v", d)
	}
}

func TestInjectErr(t *testing.T) {
	defer Reset()
	if err := Enable("e", "error@2"); err != nil {
		t.Fatal(err)
	}
	if err := InjectErr("e"); err != nil {
		t.Fatalf("visit 1 should pass, got %v", err)
	}
	if err := InjectErr("e"); err == nil {
		t.Fatal("visit 2 should return the injected error")
	}
	if err := InjectErr("e"); err != nil {
		t.Fatalf("visit 3 should pass again, got %v", err)
	}
}

func TestWriterShortWrite(t *testing.T) {
	defer Reset()
	if err := Enable("w", "shortwrite=4"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := Writer("w", &buf)
	n, err := w.Write([]byte("0123456789"))
	if err == nil || n != 4 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if buf.String() != "0123" {
		t.Fatalf("buffer holds %q", buf.String())
	}
}

func TestWriterTorn(t *testing.T) {
	defer Reset()
	if err := Enable("t", "torn=4@2"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := Writer("t", &buf)
	// Visit 1 does not fire: the write passes through intact.
	if n, err := w.Write([]byte("head-")); n != 5 || err != nil {
		t.Fatalf("pre-tear write: n=%d err=%v", n, err)
	}
	// Visit 2 tears: 4 bytes land, but the caller sees full success.
	if n, err := w.Write([]byte("0123456789")); n != 10 || err != nil {
		t.Fatalf("torn write must report success: n=%d err=%v", n, err)
	}
	// Everything after the tear is swallowed — the file is frozen as a
	// crash would have left it.
	if n, err := w.Write([]byte("trailer")); n != 7 || err != nil {
		t.Fatalf("post-tear write must report success: n=%d err=%v", n, err)
	}
	if buf.String() != "head-0123" {
		t.Fatalf("buffer holds %q, want %q", buf.String(), "head-0123")
	}
}

func TestWriterPassthroughWhenDisarmed(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	w := Writer("none", &buf)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("passthrough write: n=%d err=%v", n, err)
	}
}

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	Inject("ghost")
	if err := InjectErr("ghost"); err != nil {
		t.Fatal(err)
	}
	if Visits("ghost") != 0 {
		t.Fatal("disarmed point should not count visits")
	}
}

func TestEnableAllSpecList(t *testing.T) {
	defer Reset()
	if err := EnableAll("a=panic@9, b=sleep=1ms, c=shortwrite=8"); err != nil {
		t.Fatal(err)
	}
	Inject("a")
	if Visits("a") != 1 {
		t.Fatalf("visits(a) = %d", Visits("a"))
	}
	if err := EnableAll("bad"); err == nil {
		t.Fatal("malformed list must error")
	}
	if err := Enable("x", "explode"); err == nil {
		t.Fatal("unknown kind must error")
	}
}

// TestExitFailpoint verifies the process-kill kind end to end: a child
// test process armed via the env var must die with the injected code at
// the instant it visits the point — no panic recovery, no defers, just
// the process gone, exactly like a SIGKILL landing at that line. The
// helper runs in a subprocess because os.Exit would take the test
// binary down with it.
func TestExitFailpoint(t *testing.T) {
	if os.Getenv("FAULT_EXIT_HELPER") == "1" {
		// Child: the env var armed test.exit.helper=exit=7 in init().
		defer os.Exit(0) // deliberately skipped — exit fires first, defers never run
		Inject("test.exit.helper")
		fmt.Println("unreachable: exit failpoint did not fire")
		os.Exit(3)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestExitFailpoint$", "-test.v")
	cmd.Env = append(os.Environ(),
		"FAULT_EXIT_HELPER=1",
		EnvVar+"=test.exit.helper=exit=7")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child did not die with an exit error (err=%v, out=%s)", err, out)
	}
	if code := ee.ExitCode(); code != 7 {
		t.Fatalf("child exited %d, want injected code 7 (out=%s)", code, out)
	}
	if !bytes.Contains(out, []byte(`injected exit(7) at "test.exit.helper"`)) {
		t.Fatalf("child output lacks exit diagnostic: %s", out)
	}
	if bytes.Contains(out, []byte("unreachable")) {
		t.Fatalf("child survived the exit failpoint: %s", out)
	}
}
