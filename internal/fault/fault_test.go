package fault

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestInjectPanicOnNthVisit(t *testing.T) {
	defer Reset()
	if err := Enable("p", "panic@3"); err != nil {
		t.Fatal(err)
	}
	Inject("p") // visit 1
	Inject("p") // visit 2
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("visit 3 should panic")
		}
		if !strings.Contains(r.(string), `injected panic at "p"`) {
			t.Fatalf("panic value %v lacks point name", r)
		}
	}()
	Inject("p") // visit 3: fires
}

func TestInjectSleep(t *testing.T) {
	defer Reset()
	if err := Enable("s", "sleep=30ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	Inject("s")
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("sleep failpoint only slept %v", d)
	}
}

func TestInjectErr(t *testing.T) {
	defer Reset()
	if err := Enable("e", "error@2"); err != nil {
		t.Fatal(err)
	}
	if err := InjectErr("e"); err != nil {
		t.Fatalf("visit 1 should pass, got %v", err)
	}
	if err := InjectErr("e"); err == nil {
		t.Fatal("visit 2 should return the injected error")
	}
	if err := InjectErr("e"); err != nil {
		t.Fatalf("visit 3 should pass again, got %v", err)
	}
}

func TestWriterShortWrite(t *testing.T) {
	defer Reset()
	if err := Enable("w", "shortwrite=4"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := Writer("w", &buf)
	n, err := w.Write([]byte("0123456789"))
	if err == nil || n != 4 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if buf.String() != "0123" {
		t.Fatalf("buffer holds %q", buf.String())
	}
}

func TestWriterPassthroughWhenDisarmed(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	w := Writer("none", &buf)
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("passthrough write: n=%d err=%v", n, err)
	}
}

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	Inject("ghost")
	if err := InjectErr("ghost"); err != nil {
		t.Fatal(err)
	}
	if Visits("ghost") != 0 {
		t.Fatal("disarmed point should not count visits")
	}
}

func TestEnableAllSpecList(t *testing.T) {
	defer Reset()
	if err := EnableAll("a=panic@9, b=sleep=1ms, c=shortwrite=8"); err != nil {
		t.Fatal(err)
	}
	Inject("a")
	if Visits("a") != 1 {
		t.Fatalf("visits(a) = %d", Visits("a"))
	}
	if err := EnableAll("bad"); err == nil {
		t.Fatal("malformed list must error")
	}
	if err := Enable("x", "explode"); err == nil {
		t.Fatal("unknown kind must error")
	}
}
