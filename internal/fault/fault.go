// Package fault is a tiny failpoint registry for chaos testing. Code
// under test places named injection sites (fault.Inject, fault.InjectErr,
// fault.Writer) on interesting paths — worker loops, checkpoint writers,
// streaming handlers — and tests (or the SUPERFW_FAULTPOINTS environment
// variable) arm them with a behavior: panic, sleep, error, or short
// write. Disarmed sites cost one atomic load, so the hooks stay compiled
// into production paths permanently.
//
// Specs have the form KIND[=ARG][@HIT]:
//
//	panic          panic on every visit
//	panic@3        panic on the 3rd visit only
//	sleep=5ms      sleep 5ms on every visit
//	sleep=5ms@2    sleep on the 2nd visit only
//	error          InjectErr returns an error on every visit
//	shortwrite=16  Writer truncates each write to 16 bytes and errors
//	torn=16        Writer silently tears: 16 bytes land, success reported
//	exit=137       os.Exit(137) — a process kill at an exact code site
//
// exit is the process-kill failpoint the sharded-serving chaos tests
// use: unlike panic (which defers run and par contains), os.Exit takes
// the whole process down instantly with no cleanup, exactly like a
// SIGKILL landing at that line — so a worker can be made to die
// mid-request at a chosen point rather than whenever a signal happens
// to arrive.
//
// torn is shortwrite's silent sibling for durability testing: the
// firing write is truncated to N bytes but reported as fully written,
// and every later write through the same Writer is swallowed (reported
// successful, nothing lands). The caller carries on believing its
// journal append or checkpoint landed; only reopening the file reveals
// the torn tail — exactly the evidence a crash between write and
// fsync leaves on disk.
//
// Environment activation arms points for whole-process chaos runs:
//
//	SUPERFW_FAULTPOINTS="core.eliminate=panic@3,core.factorio.write=shortwrite=64"
//
// (the first '=' separates name from spec; later '=' belong to the spec).
package fault

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable parsed at process start to arm
// failpoints without touching test code.
const EnvVar = "SUPERFW_FAULTPOINTS"

// kind enumerates what an armed failpoint does when it fires.
type kind int

const (
	kindPanic kind = iota
	kindSleep
	kindError
	kindShortWrite
	kindTorn
	kindExit
)

type point struct {
	kind  kind
	arg   time.Duration // sleep duration
	limit int           // shortwrite byte cap / exit code
	hit   int           // fire only on this visit (1-based); 0 = every visit

	visits atomic.Int64
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	// armed is the fast-path gate: the number of armed points. Injection
	// sites bail out on armed == 0 without taking the lock.
	armed atomic.Int32
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := EnableAll(spec); err != nil {
			panic(fmt.Sprintf("fault: bad %s: %v", EnvVar, err))
		}
	}
}

// Enable arms the named failpoint with the given spec. It replaces any
// existing arming of the same name.
func Enable(name, spec string) error {
	p, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("fault: point %q: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = p
	return nil
}

// EnableAll arms a comma-separated list of name=spec pairs (the EnvVar
// format).
func EnableAll(list string) error {
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("fault: entry %q is not name=spec", entry)
		}
		if err := Enable(name, spec); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms one failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
}

// Visits reports how many times the named point has been visited since
// it was armed (0 for unarmed points).
func Visits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.visits.Load()
	}
	return 0
}

func parseSpec(spec string) (*point, error) {
	spec = strings.TrimSpace(spec)
	// Split the optional @HIT trigger off the end.
	hit := 0
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		h, err := strconv.Atoi(spec[at+1:])
		if err != nil || h < 1 {
			return nil, fmt.Errorf("bad hit trigger %q", spec[at:])
		}
		hit = h
		spec = spec[:at]
	}
	name, arg, hasArg := strings.Cut(spec, "=")
	p := &point{hit: hit}
	switch name {
	case "panic", "error":
		// Argument-free kinds: tolerating a stray "=..." would let a typo
		// in the env var arm something other than what was meant.
		if hasArg {
			return nil, fmt.Errorf("fault kind %q takes no argument (got %q)", name, arg)
		}
		if name == "panic" {
			p.kind = kindPanic
		} else {
			p.kind = kindError
		}
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("bad sleep duration %q", arg)
		}
		p.kind, p.arg = kindSleep, d
	case "shortwrite":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad shortwrite limit %q", arg)
		}
		p.kind, p.limit = kindShortWrite, n
	case "torn":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad torn limit %q", arg)
		}
		p.kind, p.limit = kindTorn, n
	case "exit":
		// Exit codes are a byte; rejecting the rest catches env-var typos
		// like exit=13s before they arm a point that never meant to.
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("bad exit code %q (want 0..255)", arg)
		}
		p.kind, p.limit = kindExit, n
	default:
		return nil, fmt.Errorf("unknown fault kind %q", name)
	}
	return p, nil
}

// lookup returns the armed point and whether this visit fires.
func lookup(name string) (*point, bool) {
	mu.Lock()
	p, ok := points[name]
	mu.Unlock()
	if !ok {
		return nil, false
	}
	v := p.visits.Add(1)
	if p.hit != 0 && v != int64(p.hit) {
		return p, false
	}
	return p, true
}

// Inject is a failpoint that can panic or sleep. It is a no-op unless a
// point of this name is armed with a panic or sleep spec.
func Inject(name string) {
	if armed.Load() == 0 {
		return
	}
	p, fire := lookup(name)
	if !fire {
		return
	}
	switch p.kind {
	case kindPanic:
		panic(fmt.Sprintf("fault: injected panic at %q (visit %d)", name, p.visits.Load()))
	case kindExit:
		// Deliberately bypasses defers and containment: this simulates the
		// process dying at this exact line.
		fmt.Fprintf(os.Stderr, "fault: injected exit(%d) at %q (visit %d)\n", p.limit, name, p.visits.Load())
		os.Exit(p.limit)
	case kindSleep:
		d := p.arg
		// Sleep in small slices so goroutines parked on an injected delay
		// still yield promptly to the scheduler under -race.
		for d > 0 {
			step := d
			if step > time.Millisecond {
				step = time.Millisecond
			}
			time.Sleep(step)
			d -= step
			runtime.Gosched()
		}
	}
}

// InjectErr is a failpoint that can return an injected error (spec
// "error") in addition to the Inject behaviors.
func InjectErr(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	p, fire := lookup(name)
	if !fire {
		return nil
	}
	if p.kind == kindError {
		return fmt.Errorf("fault: injected error at %q", name)
	}
	switch p.kind {
	case kindPanic:
		panic(fmt.Sprintf("fault: injected panic at %q (visit %d)", name, p.visits.Load()))
	case kindExit:
		fmt.Fprintf(os.Stderr, "fault: injected exit(%d) at %q (visit %d)\n", p.limit, name, p.visits.Load())
		os.Exit(p.limit)
	case kindSleep:
		time.Sleep(p.arg)
	}
	return nil
}

// Writer wraps w with the named failpoint. When armed with
// "shortwrite=N", the firing visit truncates its write to N bytes and
// returns an error, simulating a torn checkpoint the writer observes
// (disk full, EIO). When armed with "torn=N", the firing visit
// truncates to N bytes but reports success, and all later writes
// through the same wrapper are silently discarded — the crash-shaped
// tear nobody notices until the file is reopened. Unarmed, it passes
// writes through unchanged.
func Writer(name string, w io.Writer) io.Writer {
	return &faultWriter{name: name, w: w}
}

type faultWriter struct {
	name string
	w    io.Writer
	torn atomic.Bool // a torn=N point fired: swallow everything after
}

func (f *faultWriter) Write(b []byte) (int, error) {
	if f.torn.Load() {
		return len(b), nil
	}
	if armed.Load() != 0 {
		if p, fire := lookup(f.name); fire {
			switch p.kind {
			case kindShortWrite:
				n := p.limit
				if n > len(b) {
					n = len(b)
				}
				wrote, _ := f.w.Write(b[:n])
				return wrote, fmt.Errorf("fault: injected short write at %q (%d of %d bytes)", f.name, wrote, len(b))
			case kindTorn:
				n := p.limit
				if n > len(b) {
					n = len(b)
				}
				f.w.Write(b[:n])
				f.torn.Store(true)
				return len(b), nil
			}
		}
	}
	return f.w.Write(b)
}
