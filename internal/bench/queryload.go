package bench

// Query-serving load generation: the paper's factor is an offline
// precompute / online query artifact, so the number that matters in
// production is not factorization time but sustained point-query
// throughput. Real query traffic is heavily skewed — a few hub vertices
// (city centers, popular POIs) appear in most pairs — which is exactly
// the regime a bounded label cache exploits. The workload here draws
// both endpoints of every pair from a Zipf distribution mapped through
// a random vertex permutation, and the harness measures per-query
// latency percentiles and throughput for any dist(u,v) implementation.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// ZipfPairs generates a skewed point-query workload on n vertices:
// both endpoints Zipf-distributed with exponent s (> 1; larger = more
// skewed), decorrelated from vertex numbering by a seeded permutation.
func ZipfPairs(n, queries int, s float64, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	perm := rng.Perm(n)
	pairs := make([][2]int, queries)
	for i := range pairs {
		pairs[i] = [2]int{perm[z.Uint64()], perm[z.Uint64()]}
	}
	return pairs
}

// QueryLoadResult summarizes one measured query workload.
type QueryLoadResult struct {
	Queries  int
	Workers  int
	Elapsed  time.Duration
	QPS      float64
	P50, P99 time.Duration
}

// MeasureQueryLoad drives the pairs through dist from `workers`
// goroutines (<= 0 uses GOMAXPROCS), recording per-query latency.
// dist must be safe for concurrent use.
func MeasureQueryLoad(dist func(u, v int) float64, pairs [][2]int, workers int) QueryLoadResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lat := make([]time.Duration, len(pairs))
	var next atomic.Int64
	start := time.Now()
	// Self-scheduling workers keep the per-query cost at one atomic add
	// (a mutex here would distort the cached-hit latencies this harness
	// exists to measure); par.Group supplies the panic containment a raw
	// go statement would lose.
	grp := par.NewGroup(workers)
	for w := 0; w < workers; w++ {
		grp.Go(func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				t0 := time.Now()
				dist(pairs[i][0], pairs[i][1])
				lat[i] = time.Since(t0)
			}
		})
	}
	grp.Wait()
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res := QueryLoadResult{
		Queries: len(pairs),
		Workers: workers,
		Elapsed: elapsed,
		QPS:     float64(len(pairs)) / elapsed.Seconds(),
	}
	if len(lat) > 0 {
		res.P50 = lat[len(lat)*50/100]
		res.P99 = lat[len(lat)*99/100]
	}
	return res
}

// QueryLoad is the serving-layer experiment: cached vs uncached 2-hop
// point queries on a skewed (Zipf) workload — the speedup the label
// cache delivers to a production /dist endpoint.
func QueryLoad(quick bool, threads int) *Report {
	r := &Report{ID: "queryload", Title: "EXTENSION — query serving: label cache vs per-query labels (Zipf point-query workload)",
		Header: []string{"Graph", "n", "queries", "uncached qps", "cached qps", "speedup", "cached p50", "cached p99", "hit rate"}}
	queries := 50000
	zipfS := 1.2
	if quick {
		queries = 5000
	}
	var chartLabels []string
	var chartVals []float64
	for _, name := range []string{"road_l", "geoknn_l", "powergrid_m"} {
		e, ok := Find(name)
		if !ok {
			continue
		}
		g := e.Build(quick)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		f, err := core.NewFactor(plan, threads)
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		pairs := ZipfPairs(g.N, queries, zipfS, 1234)
		uncached := MeasureQueryLoad(f.Dist, pairs, threads)
		cache := core.NewLabelCache(f, 0)
		cached := MeasureQueryLoad(cache.Dist, pairs, threads)
		st := cache.Stats()
		r.AddRow(e.Name, fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.0f", uncached.QPS), fmt.Sprintf("%.0f", cached.QPS),
			fmtSpeedup(cached.QPS/uncached.QPS),
			fmtDur(cached.P50), fmtDur(cached.P99),
			fmt.Sprintf("%.1f%%", 100*st.HitRate()))
		chartLabels = append(chartLabels, e.Name)
		chartVals = append(chartVals, cached.QPS/uncached.QPS)
	}
	if len(chartVals) > 0 {
		r.Chart = "label-cache throughput gain on Zipf(s=1.2) point queries:\n" + BarChart(chartLabels, chartVals, 36)
	}
	r.AddNote("Zipf exponent %.1f, workers=GOMAXPROCS; the uncached column is the seed query path (two fresh labels per query).", zipfS)
	r.AddNote("a cache hit answers from two map lookups plus an allocation-free label meet — see BenchmarkLabelCacheDistHit for the 0 allocs/op measurement.")
	return r
}
