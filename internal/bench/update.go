package bench

// The "update" experiment measures what the live-update subsystem buys:
// p50 latency of patching a batch of edge-weight changes into the
// supernodal factor (core.FactorUpdater.Apply — copy-on-write clone +
// dirty-chain re-elimination) against the p50 of the full rebuild a
// POST /admin/reload performs (re-plan + refactorize). Decrease-only
// batches are the headline number — the acceptance gate wants them
// ≥ 20× faster than the rebuild — with increase batches (reset +
// DAG replay) reported alongside. Raw measurements go to
// BENCH_update.json for the trajectory.
//
// Apply is pure (the patch is never committed), so every rep patches
// the same base factor — exactly the latency a serving deployment sees
// on each incoming batch.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// updateJSONPath is where Update drops its raw measurements; the
// BENCH_UPDATE_OUT environment variable overrides it.
const updateJSONPath = "BENCH_update.json"

func updateOutPath() string {
	if p := os.Getenv("BENCH_UPDATE_OUT"); p != "" {
		return p
	}
	return updateJSONPath
}

// UpdateRow is one (graph, batch kind) measurement.
type UpdateRow struct {
	Graph         string  `json:"graph"`
	N             int     `json:"n"`
	Mode          string  `json:"mode"` // "decrease" or "increase"
	Batch         int     `json:"batch_edges"`
	PatchP50NS    int64   `json:"patch_p50_ns"`
	RebuildP50NS  int64   `json:"rebuild_p50_ns"`
	Speedup       float64 `json:"speedup"`
	DirtyFraction float64 `json:"dirty_fraction"`
	DirtySn       int     `json:"dirty_supernodes"`
	TotalSn       int     `json:"total_supernodes"`
}

// UpdateResult is the BENCH_update.json payload.
type UpdateResult struct {
	Quick   bool        `json:"quick"`
	Threads int         `json:"threads"`
	Reps    int         `json:"reps"`
	Machine MachineInfo `json:"machine"`
	Rows    []UpdateRow `json:"rows"`
}

// Update runs the patch-vs-rebuild comparison and writes
// BENCH_update.json. Unlike the other experiments it always builds the
// catalog graphs at FULL size, even under -quick: the quick-scale
// graphs factor into a handful of supernodes, so one batch's ancestor
// closure covers most of the factor and "patch vs rebuild" measures
// nothing. Quick mode only trims the rep counts; the whole experiment
// is a few seconds either way because each rebuild is milliseconds.
func Update(quick bool, threads int) *Report {
	graphs := []string{"powergrid_s", "geoknn_s", "road_l"}
	patchReps, rebuildReps := 9, 3
	if quick {
		patchReps = 5
	}
	r := &Report{ID: "update",
		Title:  "Live update: batched patch (copy-on-write + dirty-chain re-elimination) vs full rebuild (re-plan + refactorize), p50",
		Header: []string{"graph", "n", "mode", "batch", "patch p50", "rebuild p50", "speedup", "dirty"}}
	res := UpdateResult{Quick: quick, Threads: threads, Reps: patchReps, Machine: CurrentMachine()}
	rng := rand.New(rand.NewSource(7101))
	for _, name := range graphs {
		e, ok := Find(name)
		if !ok {
			r.AddNote("unknown catalog graph %s, skipped", name)
			continue
		}
		// Full size regardless of quick — see the comment on Update.
		g := e.Build(false)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: plan failed: %v", name, err)
			continue
		}
		f, err := core.NewFactor(plan, threads)
		if err != nil {
			r.AddNote("%s: factor failed: %v", name, err)
			continue
		}
		rebuild := medianDuration(rebuildReps, func() {
			p, err := core.NewPlan(g, core.DefaultOptions())
			if err != nil {
				panic(err)
			}
			if _, err := core.NewFactor(p, threads); err != nil {
				panic(err)
			}
		})
		for _, mode := range []string{"decrease", "increase"} {
			row, err := updateCell(g, f, name, mode, patchReps, threads, rng)
			if err != nil {
				r.AddNote("%s/%s: %v", name, mode, err)
				continue
			}
			row.RebuildP50NS = rebuild.Nanoseconds()
			row.Speedup = float64(row.RebuildP50NS) / float64(row.PatchP50NS)
			res.Rows = append(res.Rows, *row)
			r.AddRow(name, fmt.Sprintf("%d", row.N), mode, fmt.Sprintf("%d", row.Batch),
				fmtDur(time.Duration(row.PatchP50NS)), fmtDur(time.Duration(row.RebuildP50NS)),
				fmtSpeedup(row.Speedup),
				fmt.Sprintf("%d/%d (%.1f%%)", row.DirtySn, row.TotalSn, 100*row.DirtyFraction))
		}
	}
	if path := updateOutPath(); writeUpdateJSON(path, &res) != nil {
		r.AddNote("FAILED to write %s", path)
	} else {
		r.AddNote("raw measurements written to %s", path)
	}
	r.AddNote("patch = FactorUpdater.Apply (never committed, so every rep patches the same base); rebuild = NewPlan + NewFactor from scratch.")
	return r
}

// updateCell times one batch kind against one factor.
func updateCell(g *graph.Graph, f *core.Factor, name, mode string, reps, threads int, rng *rand.Rand) (*UpdateRow, error) {
	u, err := core.NewFactorUpdater(g, f, core.UpdaterOptions{Threads: threads})
	if err != nil {
		return nil, err
	}
	edges := g.Edges()
	batch := core.NewUpdateBatch()
	nb := 8
	for i := 0; i < nb; i++ {
		e := edges[rng.Intn(len(edges))]
		w := e.W * 0.5
		if mode == "increase" {
			w = e.W * 1.5
		}
		if err := batch.Set(e.U, e.V, w); err != nil {
			return nil, err
		}
	}
	var last *core.Patched
	patch := medianDuration(reps, func() {
		p, err := u.Apply(context.Background(), batch)
		if err != nil {
			panic(err)
		}
		last = p
	})
	row := &UpdateRow{
		Graph: name, N: g.N, Mode: mode, Batch: batch.Len(),
		PatchP50NS:    patch.Nanoseconds(),
		DirtyFraction: last.Stats.DirtyFraction,
		DirtySn:       last.Stats.DirtySupernodes,
		TotalSn:       last.Stats.TotalSupernodes,
	}
	return row, nil
}

// medianDuration runs fn reps times and returns the median wall time.
func medianDuration(reps int, fn func()) time.Duration {
	times := make([]time.Duration, reps)
	for i := range times {
		times[i] = timeIt(fn)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

func writeUpdateJSON(path string, res *UpdateResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
