package bench

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/semiring"
)

// TestFusedDenseSpeedupGate is the acceptance gate for the fused-kernel
// PR, opt-in via FUSED_GATE=1 (it is a timing assertion, so it only
// means something on an otherwise-idle AVX-512 host — `make gemm-smoke`
// runs it that way; plain `go test` skips it).
//
//   - fused full-ISA leg ≥1.3× over the PR 4 staged AVX2 leg on a
//     dense n=512 panel;
//   - max-min and index-carrying Paths kernels ≥3× over scalar on
//     dense n=256 panels.
func TestFusedDenseSpeedupGate(t *testing.T) {
	if os.Getenv("FUSED_GATE") == "" {
		t.Skip("set FUSED_GATE=1 to run the fused-kernel timing gates")
	}
	if !semiring.HasAVX512() {
		t.Skip("gate thresholds assume AVX-512 dispatch; host has none")
	}

	t.Run("fused_vs_staged", func(t *testing.T) {
		const n, reps = 512, 5
		rng := rand.New(rand.NewSource(7401))
		A := vecRandMat(rng, n, n, 1.0, semiring.Inf)
		B := vecRandMat(rng, n, n, 1.0, semiring.Inf)
		C0 := vecRandMat(rng, n, n, 0.3, semiring.Inf)
		row := gemmCell(n, 1.0, reps, A, B, C0)
		if !row.DenseDispatch {
			t.Fatalf("dense panel did not take the dense dispatch path")
		}
		t.Logf("staged %.2f GOP/s, fused %.2f GOP/s, speedup %.2f×",
			row.StagedGops, row.FusedGops, row.SpeedupVsStaged)
		if row.SpeedupVsStaged < 1.3 {
			t.Errorf("fused leg %.2f× over staged AVX2, want ≥1.3×", row.SpeedupVsStaged)
		}
	})

	for _, v := range vecVariants() {
		if v.name == "min-plus" {
			continue // reported by gemmvec but not gated
		}
		v := v
		t.Run("vector_"+v.name, func(t *testing.T) {
			const n, reps = 256, 5
			rng := rand.New(rand.NewSource(7402))
			A := vecRandMat(rng, n, n, 1.0, v.zero)
			B := vecRandMat(rng, n, n, 1.0, v.zero)
			C0 := vecRandMat(rng, n, n, 0.3, v.zero)
			var nc0, na semiring.IntMat
			if v.paths {
				nc0, na = semiring.NewIntMat(n, n), semiring.NewIntMat(n, n)
				semiring.InitNextHops(C0, nc0)
				semiring.InitNextHops(A, na)
			}
			scalar, vector := vecCell(v, reps, A, B, C0, nc0, na)
			sp := scalar.Seconds() / vector.Seconds()
			t.Logf("scalar %v, vector %v, speedup %.2f×",
				scalar.Round(time.Microsecond), vector.Round(time.Microsecond), sp)
			if sp < 3.0 {
				t.Errorf("%s vector leg %.2f× over scalar, want ≥3×", v.name, sp)
			}
		})
	}
}
