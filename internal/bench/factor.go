package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apsp"
	"repro/internal/core"
)

// Factor is an extension experiment beyond the paper's evaluation: the
// O(fill)-memory supernodal factor (the "semiring Cholesky factors" the
// paper's §3.4 describes but never exploits) versus the dense solver and
// per-query Dijkstra. It reports factor size against the dense matrix,
// factorization time, SSSP-sweep time, and 2-hop-label point-query time.
func Factor(quick bool) *Report {
	r := &Report{ID: "factor", Title: "EXTENSION — supernodal factor: O(fill) memory APSP-on-demand",
		Header: []string{"Graph", "n", "factor MB", "dense MB", "ratio", "factorize", "SSSP/src", "Dijkstra/src", "label query"}}
	names := []string{"road_l", "geoknn_l", "powergrid_m", "finance_m", "community_l"}
	for _, name := range names {
		e, ok := Find(name)
		if !ok {
			continue
		}
		g := e.Build(quick)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		f, err := core.NewFactor(plan, 0)
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		dense := int64(8) * int64(g.N) * int64(g.N)

		// SSSP sweep rate.
		srcs := 32
		if g.N < srcs {
			srcs = g.N
		}
		t0 := time.Now()
		for s := 0; s < srcs; s++ {
			_ = f.SSSP(s * (g.N / srcs))
		}
		ssspEach := time.Since(t0) / time.Duration(srcs)

		t0 = time.Now()
		for s := 0; s < srcs; s++ {
			if _, err := apsp.DijkstraSSSP(g, s*(g.N/srcs)); err != nil {
				r.AddNote("%s: %v", name, err)
				break
			}
		}
		djEach := time.Since(t0) / time.Duration(srcs)

		// Label point queries.
		rng := rand.New(rand.NewSource(42))
		nq := 500
		t0 = time.Now()
		for q := 0; q < nq; q++ {
			_ = f.Dist(rng.Intn(g.N), rng.Intn(g.N))
		}
		lblEach := time.Since(t0) / time.Duration(nq)

		r.AddRow(e.Name, fmt.Sprintf("%d", g.N),
			fmt.Sprintf("%.1f", float64(f.Memory())/1e6),
			fmt.Sprintf("%.1f", float64(dense)/1e6),
			fmt.Sprintf("%.1f×", float64(dense)/float64(f.Memory())),
			fmtDur(f.FactorTime), fmtDur(ssspEach), fmtDur(djEach), fmtDur(lblEach))
	}
	r.AddNote("the paper's dense Dist matrix capped it at 114k vertices / 105 GB; the factor removes the n² wall for query workloads.")
	return r
}
