package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCatalogBuildsValidGraphs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog() {
		if seen[e.Name] {
			t.Fatalf("duplicate catalog name %q", e.Name)
		}
		seen[e.Name] = true
		g := e.Build(true)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if g.N == 0 || g.M() == 0 {
			t.Fatalf("%s: degenerate graph", e.Name)
		}
	}
	if len(seen) < 20 {
		t.Errorf("catalog has %d entries, expected ≥20 (one per Table 3 row)", len(seen))
	}
}

func TestCatalogSuitesNonEmpty(t *testing.T) {
	var small, large int
	for _, e := range Catalog() {
		if e.Small {
			small++
		}
		if e.Large {
			large++
		}
	}
	if small < 5 || large < 5 {
		t.Errorf("suites too small: %d small, %d large", small, large)
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("geoknn_s"); !ok {
		t.Error("known entry not found")
	}
	if _, ok := Find("nonexistent"); ok {
		t.Error("unknown entry found")
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds even in quick mode")
	}
	// Keep the gemm and update experiments' JSON artifacts out of the
	// package dir.
	t.Setenv("BENCH_GEMM_OUT", filepath.Join(t.TempDir(), "BENCH_gemm.json"))
	t.Setenv("BENCH_UPDATE_OUT", filepath.Join(t.TempDir(), "BENCH_update.json"))
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, true, 2)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Errorf("report id %q, want %q", rep.ID, id)
			}
			if len(rep.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			md := rep.Markdown()
			if !strings.Contains(md, rep.Title) {
				t.Error("markdown missing title")
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", true, 1); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunAllWritesMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll([]string{"fig1"}, true, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## fig1") {
		t.Error("markdown output missing section header")
	}
}

func TestSlopeFit(t *testing.T) {
	// y = 2.5x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{3.5, 6, 8.5, 11}
	if s := slope(x, y); s < 2.49 || s > 2.51 {
		t.Errorf("slope %g, want 2.5", s)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtDur(1500*time.Millisecond) != "1.50s" {
		t.Error(fmtDur(1500 * time.Millisecond))
	}
	if fmtDur(2500*time.Microsecond) != "2.5ms" {
		t.Error(fmtDur(2500 * time.Microsecond))
	}
	if fmtSpeedup(123.4) != "123×" {
		t.Error(fmtSpeedup(123.4))
	}
	if fmtSpeedup(12.34) != "12.3×" {
		t.Error(fmtSpeedup(12.34))
	}
	if fmtSpeedup(1.234) != "1.23×" {
		t.Error(fmtSpeedup(1.234))
	}
}

func TestRadiusForDeg(t *testing.T) {
	// For n=1000 points in 2D with target degree 20: check the expected
	// degree formula round-trips: deg = n·π·r².
	r := radiusForDeg(1000, 2, 20)
	deg := 1000 * 3.14159265 * r * r
	if deg < 19 || deg > 21 {
		t.Errorf("2D radius formula off: deg=%g", deg)
	}
	r3 := radiusForDeg(1000, 3, 30)
	deg3 := 1000 * 4.18879 * r3 * r3 * r3
	if deg3 < 29 || deg3 > 31 {
		t.Errorf("3D radius formula off: deg=%g", deg3)
	}
}
