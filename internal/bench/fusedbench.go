package bench

// Companion experiments to "gemm" for the fused-kernel work:
//
//   - "gemmvec": every semiring variant's staged kernel at scalar vs
//     full-ISA dispatch on dense panels. The acceptance gate for the
//     wider-SIMD PR wants the max-min and index-carrying Paths kernels
//     ≥3× over scalar on dense panels (min-plus is reported alongside).
//   - "gemmreuse": what pack amortization buys — one supernode-shaped
//     row panel packed once and swept R times (the outer-scatter access
//     pattern, where one A(k,tj) panel feeds a whole grid column)
//     against R staged MulAdds that each re-pack B from scratch.
//
// Both interleave legs round-robin and take best-of-reps, like "gemm".

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/semiring"
)

// vecRandMat builds an n×m operand with the given finite fraction;
// zero is the semiring's annihilator (+Inf min-plus, -Inf max-min).
func vecRandMat(rng *rand.Rand, n, m int, density, zero float64) semiring.Mat {
	mat := semiring.NewMat(n, m)
	for i := range mat.Data {
		if rng.Float64() < density {
			mat.Data[i] = rng.Float64()*10 + 0.01
		} else {
			mat.Data[i] = zero
		}
	}
	return mat
}

// vecVariant is one semiring kernel under the scalar-vs-vector ablation.
type vecVariant struct {
	name  string
	zero  float64
	paths bool
	run   func(C, A, B semiring.Mat, nc, na semiring.IntMat)
}

func vecVariants() []vecVariant {
	return []vecVariant{
		{"min-plus", semiring.Inf, false, func(C, A, B semiring.Mat, _, _ semiring.IntMat) {
			semiring.MinPlusMulAdd(C, A, B)
		}},
		{"max-min", -semiring.Inf, false, func(C, A, B semiring.Mat, _, _ semiring.IntMat) {
			semiring.MaxMinMulAdd(C, A, B)
		}},
		{"min-plus paths", semiring.Inf, true, func(C, A, B semiring.Mat, nc, na semiring.IntMat) {
			semiring.MinPlusMulAddPaths(C, A, B, nc, na)
		}},
		{"max-min paths", -semiring.Inf, true, func(C, A, B semiring.Mat, nc, na semiring.IntMat) {
			semiring.MaxMinMulAddPaths(C, A, B, nc, na)
		}},
	}
}

// GemmVec runs the scalar-vs-vector ablation across semiring variants.
func GemmVec(quick bool) *Report {
	sizes := []int{256, 512}
	reps := 5
	if quick {
		sizes = []int{96}
		reps = 3
	}
	r := &Report{ID: "gemmvec",
		Title:  "Semiring kernel variants, scalar vs vector dispatch on dense panels (fused op = 2 flops)",
		Header: []string{"variant", "n", "scalar GOP/s", "vector GOP/s", "speedup"}}
	rng := rand.New(rand.NewSource(7201))
	worstGated := 0.0
	gatedCells := 0
	for _, v := range vecVariants() {
		for _, n := range sizes {
			A := vecRandMat(rng, n, n, 1.0, v.zero)
			B := vecRandMat(rng, n, n, 1.0, v.zero)
			C0 := vecRandMat(rng, n, n, 0.3, v.zero)
			var nc0, na semiring.IntMat
			if v.paths {
				nc0, na = semiring.NewIntMat(n, n), semiring.NewIntMat(n, n)
				semiring.InitNextHops(C0, nc0)
				semiring.InitNextHops(A, na)
			}
			scalarT, vectorT := vecCell(v, reps, A, B, C0, nc0, na)
			flops := 2 * float64(n) * float64(n) * float64(n)
			sp := scalarT.Seconds() / vectorT.Seconds()
			if v.name != "min-plus" && n >= 256 {
				if gatedCells == 0 || sp < worstGated {
					worstGated = sp
				}
				gatedCells++
			}
			r.AddRow(v.name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", flops/scalarT.Seconds()/1e9),
				fmt.Sprintf("%.2f", flops/vectorT.Seconds()/1e9),
				fmtSpeedup(sp))
		}
	}
	r.AddNote("vector dispatch: %s; scalar leg via SetMaxVectorISA(\"scalar\") on the same adaptive engine.", semiring.VectorISA())
	if gatedCells > 0 {
		r.AddNote("gate (max-min and Paths dense panels, n≥256): min speedup %.2f× across %d cells (gate: ≥3× on AVX-512 hosts).", worstGated, gatedCells)
	} else {
		r.AddNote("gate cells (n≥256) only run at full scale; rerun without -quick.")
	}
	return r
}

// vecCell returns best-of-reps times for the scalar and vector legs.
func vecCell(v vecVariant, reps int, A, B, C0 semiring.Mat, nc0, na semiring.IntMat) (scalar, vector time.Duration) {
	scratch := C0.Clone()
	var nc semiring.IntMat
	if v.paths {
		nc = semiring.NewIntMat(C0.Rows, C0.Cols)
	}
	restore := func() {
		scratch.Copy(C0)
		if v.paths {
			copy(nc.Data, nc0.Data)
		}
	}
	scalar, vector = time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < reps; rep++ {
		restore()
		prev := semiring.SetMaxVectorISA("scalar")
		if t := timeIt(func() { v.run(scratch, A, B, nc, na) }); t < scalar {
			scalar = t
		}
		semiring.SetMaxVectorISA(prev)
		restore()
		if t := timeIt(func() { v.run(scratch, A, B, nc, na) }); t < vector {
			vector = t
		}
	}
	return scalar, vector
}

// GemmReuse measures pack amortization on the outer-scatter access
// pattern: a supernode row panel B (s×n) consumed by R destination
// sweeps C_i += A_i ⊗ B. The staged leg re-packs B inside every MulAdd;
// the fused leg packs once and runs the packed sweep R times.
func GemmReuse(quick bool) *Report {
	s, n, m := 64, 1024, 64
	reps := 5
	if quick {
		s, n, m = 32, 256, 32
		reps = 3
	}
	r := &Report{ID: "gemmreuse",
		Title:  fmt.Sprintf("Pack amortization on the outer-scatter pattern (B %d×%d packed once, swept by R %d-row panels)", s, n, m),
		Header: []string{"R", "staged GOP/s", "fused GOP/s", "fused vs staged", "reuse bytes"}}
	rng := rand.New(rand.NewSource(7301))
	B := vecRandMat(rng, s, n, 1.0, semiring.Inf)
	for _, R := range []int{1, 2, 4, 8} {
		As := make([]semiring.Mat, R)
		Cs := make([]semiring.Mat, R)
		C0s := make([]semiring.Mat, R)
		for i := range As {
			As[i] = vecRandMat(rng, m, s, 1.0, semiring.Inf)
			C0s[i] = vecRandMat(rng, m, n, 0.3, semiring.Inf)
			Cs[i] = C0s[i].Clone()
		}
		restore := func() {
			for i := range Cs {
				Cs[i].Copy(C0s[i])
			}
		}
		bestSt, bestFu := time.Duration(1<<62), time.Duration(1<<62)
		var reuse uint64
		for rep := 0; rep < reps; rep++ {
			restore()
			if t := timeIt(func() {
				for i := 0; i < R; i++ {
					semiring.MinPlusMulAdd(Cs[i], As[i], B)
				}
			}); t < bestSt {
				bestSt = t
			}
			restore()
			k0 := semiring.ReadKernelCounters()
			if t := timeIt(func() {
				P := semiring.PackPanel(B, semiring.Inf)
				for i := 0; i < R; i++ {
					semiring.MinPlusMulAddPacked(Cs[i], As[i], P)
				}
				P.Release()
			}); t < bestFu {
				bestFu = t
			}
			reuse = semiring.ReadKernelCounters().Sub(k0).PackedReuseBytes
		}
		flops := 2 * float64(R) * float64(m) * float64(s) * float64(n)
		r.AddRow(fmt.Sprintf("%d", R),
			fmt.Sprintf("%.2f", flops/bestSt.Seconds()/1e9),
			fmt.Sprintf("%.2f", flops/bestFu.Seconds()/1e9),
			fmtSpeedup(bestSt.Seconds()/bestFu.Seconds()),
			fmt.Sprintf("%d", reuse))
	}
	r.AddNote("reuse bytes = packed tiles re-read instead of re-staged (KernelCounters.PackedReuseBytes delta for the fused leg).")
	r.AddNote("the supernodal eliminate applies exactly this shape: each up-panel section is packed once per ancestor column and swept by every finer row block.")
	return r
}
