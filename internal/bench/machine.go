package bench

import (
	"runtime"

	"repro/internal/semiring"
)

// MachineInfo identifies the host, toolchain, and kernel ISA behind a
// benchmark JSON payload. Every BENCH_*.json embeds one so trajectory
// comparisons never silently mix an AVX-512 run with an AVX2 or arm64
// one — the paper's §5 reports its Xeon Gold 6142 configuration for the
// same reason.
type MachineInfo struct {
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"num_cpu"`
	VectorISA   string   `json:"vector_isa"`
	CPUFeatures []string `json:"cpu_features"`
}

// CurrentMachine snapshots the running host. VectorISA reflects any
// live SetMaxVectorISA clamp, so ablation runs self-describe.
func CurrentMachine() MachineInfo {
	return MachineInfo{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		VectorISA:   semiring.VectorISA(),
		CPUFeatures: semiring.CPUFeatures(),
	}
}
