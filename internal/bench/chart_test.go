package bench

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"aa", "b"}, []float64{10, 5}, 10)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 bars, got %d", len(lines))
	}
	if strings.Count(lines[0], "█") != 10 {
		t.Errorf("max bar should fill width: %q", lines[0])
	}
	if strings.Count(lines[1], "█") != 5 {
		t.Errorf("half bar should be half width: %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "aa ") || !strings.HasPrefix(lines[1], "b  ") {
		t.Errorf("labels must be aligned: %q", out)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	if BarChart(nil, nil, 10) != "" {
		t.Error("empty input should render empty")
	}
	if BarChart([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("mismatched lengths should render empty")
	}
	out := BarChart([]string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "█") {
		t.Error("zero value should have no bar")
	}
}

func TestLogBarChart(t *testing.T) {
	out := LogBarChart([]string{"big", "one"}, []float64{100, 1}, 20)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "100×") || !strings.Contains(lines[1], "1×") {
		t.Errorf("raw values must annotate the bars: %q", out)
	}
	if strings.Count(lines[0], "█") <= strings.Count(lines[1], "█") {
		t.Error("100× must be a longer bar than 1×")
	}
}

func TestLinePlot(t *testing.T) {
	x := []float64{1, 2, 4, 8}
	out := LinePlot(x, map[string][]float64{
		"fast": {1, 2, 4, 8},
		"flat": {1, 1, 1, 1},
	}, 30, 8)
	if !strings.Contains(out, "●") || !strings.Contains(out, "▲") {
		t.Errorf("both series glyphs must appear:\n%s", out)
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "flat") {
		t.Error("legend missing")
	}
	if LinePlot(nil, nil, 10, 5) != "" {
		t.Error("empty input should render empty")
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{Header: []string{"a", "b"}, Rows: [][]string{{"1", "x,y"}, {"2", `say "hi"`}}}
	csv := r.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
