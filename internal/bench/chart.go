package bench

// ASCII chart rendering for experiment reports: the paper's figures are
// bar charts (Fig 6) and line plots (Fig 7/8); regenerating them as
// text keeps the harness dependency-free while still giving a visual
// read of the shapes.

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled values as horizontal bars, scaled to width.
// Values must be non-negative; the scale is linear from zero.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		fmt.Fprintf(&b, "%-*s │%s %.3g\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// LogBarChart renders bars on a log10 scale — right for speedup factors
// spanning orders of magnitude (Fig 6's 1×…123× labels).
func LogBarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(values) == 0 {
		return ""
	}
	logs := make([]float64, len(values))
	for i, v := range values {
		if v < 1 {
			v = 1
		}
		logs[i] = math.Log10(v) + 0.05 // keep 1× visible as a sliver
	}
	out := BarChart(labels, logs, width)
	// Re-annotate with the raw values (BarChart printed the logs).
	lines := strings.Split(out, "\n")
	for i := range lines {
		if i < len(values) {
			if cut := strings.LastIndex(lines[i], " "); cut >= 0 {
				lines[i] = lines[i][:cut] + fmt.Sprintf(" %.3g×", values[i])
			}
		}
	}
	return strings.Join(lines, "\n")
}

// LinePlot renders one or more series against a shared x axis as an
// ASCII scatter/line grid of the given dimensions. Each series gets a
// distinct glyph; points are plotted at the nearest cell.
func LinePlot(x []float64, series map[string][]float64, width, height int) string {
	if len(x) == 0 || len(series) == 0 {
		return ""
	}
	if width <= 0 {
		width = 50
	}
	if height <= 0 {
		height = 12
	}
	minX, maxX := x[0], x[0]
	for _, v := range x {
		minX = math.Min(minX, v)
		maxX = math.Max(maxX, v)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		for _, v := range ys {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				minY = math.Min(minY, v)
				maxY = math.Max(maxY, v)
			}
		}
	}
	if math.IsInf(minY, 0) || maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	glyphs := []rune{'●', '▲', '■', '◆', '○', '△'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	// deterministic glyph assignment
	sortStrings(names)
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		ys := series[name]
		for i, xv := range x {
			if i >= len(ys) || math.IsInf(ys[i], 0) || math.IsNaN(ys[i]) {
				continue
			}
			c := int((xv - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((ys[i]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.3g ┤%s\n", maxY, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.3g ┼%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%8s  %-*.3g%*.3g\n", "", width/2, minX, width-width/2, maxX)
	legend := make([]string, 0, len(names))
	for si, name := range names {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], name))
	}
	b.WriteString("          " + strings.Join(legend, "   "))
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CSV renders the report's table as RFC-4180-ish CSV (quotes only when
// needed), for machine consumption alongside the markdown.
func (r *Report) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}
