package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Crossover is an extension experiment: it interpolates between the
// paper's best case (a planar grid with Θ(√n) separators) and its
// adversarial case (an expander) by adding a growing number of random
// long-range edges to a grid, and records where the SuperFw/Dijkstra
// winner flips. The paper states the two regimes qualitatively (§4.3,
// §5.2); this measures the boundary on one graph family.
func Crossover(quick bool, threads int) *Report {
	r := &Report{ID: "crossover", Title: "EXTENSION — planar→expander dial: where SuperFw stops winning",
		Header: []string{"extra edges / n", "n/|S|", "planned ops / n³", "SuperFw", "Dijkstra", "SuperFw/Dijkstra"}}
	side := 40
	if quick {
		side = 16
	}
	n := side * side
	base := gen.Grid2D(side, side, gen.WeightUniform, 400)
	fractions := []float64{0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}
	rng := rand.New(rand.NewSource(401))
	var xs, ratios []float64
	for _, frac := range fractions {
		edges := base.Edges()
		extra := int(frac * float64(n))
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: 0.1 + rng.Float64()})
			}
		}
		g := graph.MustFromEdges(n, edges)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("frac %.2f: %v", frac, err)
			continue
		}
		res, err := plan.SolveWith(threads, true)
		if err != nil {
			r.AddNote("frac %.2f: %v", frac, err)
			continue
		}
		var djTime time.Duration
		djTime = timeIt(func() {
			if _, err := apsp.Dijkstra(g, threads); err != nil {
				r.AddNote("frac %.2f: %v", frac, err)
			}
		})
		sep := "-"
		if plan.TopSep > 0 {
			sep = fmt.Sprintf("%.1f", float64(n)/float64(plan.TopSep))
		}
		nd := float64(plan.PlannedOps()) / (float64(n) * float64(n) * float64(n))
		ratio := float64(res.NumericTime) / float64(djTime)
		r.AddRow(fmt.Sprintf("%.2f", frac), sep, fmt.Sprintf("%.3f", nd),
			fmtDur(res.NumericTime), fmtDur(djTime), fmt.Sprintf("%.2f", ratio))
		xs = append(xs, frac)
		ratios = append(ratios, ratio)
	}
	if len(xs) > 1 {
		r.Chart = "SuperFw/Dijkstra time ratio vs extra random edges (1.0 = crossover):\n" +
			LinePlot(xs, map[string][]float64{"ratio": ratios}, 50, 10)
	}
	r.AddNote("ratios < 1 mean SuperFw wins; the flip tracks the separator quality (n/|S|) collapsing as random edges destroy planarity.")
	return r
}
