package bench

// The "gemm" experiment sweeps the adaptive SemiringGemm engine across a
// size × density grid and compares it against the frozen seed kernel
// (semiring.MinPlusMulAddReference). It reports fused-op throughput for
// both, the speedup, and which path the engine's density sampler chose —
// the dense packed register-blocked kernel or the Inf-skip stream — and
// writes the raw measurements to BENCH_gemm.json for the acceptance
// gate (≥1.5× on dense n≥768, ≤5% regression on ≥90%-Inf operands).
//
// Timing methodology: the host is shared and noisy, so each cell takes
// the best of several reps with the two kernels interleaved round-robin
// (a frequency dip hits both candidates, not just one). C is restored
// from a pristine copy before every rep — timing repeated multiply-adds
// into an already-converged C would let the conditional store never
// fire and flatter whichever kernel ran second.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/semiring"
)

// gemmJSONPath is where Gemm drops its raw measurements, relative to the
// working directory (the repo root under `make bench-gemm`). The
// BENCH_GEMM_OUT environment variable overrides it — the test harness
// points it at a temp dir so `go test` never litters the package dir.
const gemmJSONPath = "BENCH_gemm.json"

// gemmOutPath resolves the JSON output path.
func gemmOutPath() string {
	if p := os.Getenv("BENCH_GEMM_OUT"); p != "" {
		return p
	}
	return gemmJSONPath
}

// GemmRow is one (size, density) cell of the sweep.
type GemmRow struct {
	N             int                     `json:"n"`
	Density       float64                 `json:"density"`
	RefNS         int64                   `json:"ref_ns"`
	AdaptiveNS    int64                   `json:"adaptive_ns"`
	RefGops       float64                 `json:"ref_gops"`
	AdaptiveGops  float64                 `json:"adaptive_gops"`
	Speedup       float64                 `json:"speedup"`
	DenseDispatch bool                    `json:"dense_dispatch"`
	Kernel        semiring.KernelCounters `json:"kernel_delta"`
}

// GemmResult is the BENCH_gemm.json payload.
type GemmResult struct {
	Quick  bool                `json:"quick"`
	Reps   int                 `json:"reps"`
	Tuning semiring.GemmTuning `json:"tuning"`
	Rows   []GemmRow           `json:"rows"`
}

// gemmRandMat builds an n×n operand with the given finite fraction;
// finite entries are positive weights, the rest Inf.
func gemmRandMat(rng *rand.Rand, n int, density float64) semiring.Mat {
	m := semiring.NewInfMat(n, n)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Float64()*10 + 0.01
		}
	}
	return m
}

// Gemm runs the density × size sweep and writes BENCH_gemm.json.
func Gemm(quick bool) *Report {
	sizes := []int{256, 512, 768, 1024}
	reps := 5
	if quick {
		sizes = []int{96, 192}
		reps = 3
	}
	densities := []float64{0.05, 0.5, 0.9, 1.0}
	r := &Report{ID: "gemm",
		Title:  "Adaptive SemiringGemm vs seed kernel (fused min-plus op = 2 flops; best of interleaved reps)",
		Header: []string{"n", "density", "path", "seed GOP/s", "adaptive GOP/s", "speedup"}}
	res := GemmResult{Quick: quick, Reps: reps, Tuning: semiring.CurrentGemmTuning()}
	rng := rand.New(rand.NewSource(7001))
	for _, n := range sizes {
		for _, d := range densities {
			A := gemmRandMat(rng, n, d)
			B := gemmRandMat(rng, n, d)
			C0 := gemmRandMat(rng, n, 0.3)
			// Sparse cells are cheap and noise-dominated: buy extra reps.
			cellReps := reps
			if d <= 0.1 {
				cellReps = 3 * reps
			}
			row := gemmCell(n, d, cellReps, A, B, C0)
			res.Rows = append(res.Rows, row)
			path := "stream"
			if row.DenseDispatch {
				path = "dense"
			}
			r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", d), path,
				fmt.Sprintf("%.2f", row.RefGops), fmt.Sprintf("%.2f", row.AdaptiveGops),
				fmtSpeedup(row.Speedup))
		}
	}
	if path := gemmOutPath(); writeGemmJSON(path, &res) != nil {
		r.AddNote("FAILED to write %s", path)
	} else {
		r.AddNote("raw measurements written to %s", path)
	}
	kernel := "register-blocked 4×2 scalar micro-kernel"
	if semiring.HasVectorKernel() {
		kernel = "AVX2 vector kernel (8 lanes/iter)"
	}
	r.AddNote("dense dispatch = packed B tiles + %s; stream = Inf-skip row streaming (the seed algorithm).", kernel)
	return r
}

// gemmCell times one (n, density) cell: best-of-reps, kernels
// interleaved, C restored from C0 before every timed call.
func gemmCell(n int, d float64, reps int, A, B, C0 semiring.Mat) GemmRow {
	// Correctness cross-check (also warms the pack pool and caches).
	refC, adC := C0.Clone(), C0.Clone()
	semiring.MinPlusMulAddReference(refC, A, B)
	k0 := semiring.ReadKernelCounters()
	semiring.MinPlusMulAdd(adC, A, B)
	delta := semiring.ReadKernelCounters().Sub(k0)
	if !adC.Equal(refC) {
		panic(fmt.Sprintf("bench: adaptive and seed gemm disagree at n=%d density=%.2f", n, d))
	}
	scratch := C0.Clone()
	bestRef, bestAd := time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < reps; rep++ {
		scratch.Copy(C0)
		if t := timeIt(func() { semiring.MinPlusMulAddReference(scratch, A, B) }); t < bestRef {
			bestRef = t
		}
		scratch.Copy(C0)
		if t := timeIt(func() { semiring.MinPlusMulAdd(scratch, A, B) }); t < bestAd {
			bestAd = t
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	return GemmRow{
		N: n, Density: d,
		RefNS: bestRef.Nanoseconds(), AdaptiveNS: bestAd.Nanoseconds(),
		RefGops:       flops / bestRef.Seconds() / 1e9,
		AdaptiveGops:  flops / bestAd.Seconds() / 1e9,
		Speedup:       bestRef.Seconds() / bestAd.Seconds(),
		DenseDispatch: delta.DenseCalls > 0,
		Kernel:        delta,
	}
}

// writeGemmJSON writes the result as indented JSON.
func writeGemmJSON(path string, res *GemmResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
