package bench

// The "gemm" experiment sweeps the SemiringGemm engine across a size ×
// density grid with THREE legs per cell, tracking the kernel's history
// across PRs:
//
//   - seed:   the frozen reference kernel (MinPlusMulAddReference)
//   - staged: the PR 4 engine — adaptive dense/stream dispatch with the
//     AVX2 micro-kernel, B re-packed on every call
//     (SetMaxVectorISA("avx2") + MinPlusMulAdd)
//   - fused:  the fused pipeline — PackPanel once, packed-tile sweep at
//     the full ISA (AVX-512 on capable hosts)
//
// All three must agree bitwise (the cell panics otherwise — dense and
// stream evaluate identical candidate sets with exact min, so there is
// no tolerance to hide behind). Raw measurements go to BENCH_gemm.json
// for the acceptance gate: fused ≥1.3× over staged on dense panels
// (n≥512, density≥0.9).
//
// Timing methodology: the host is shared and noisy, so each cell takes
// the best of several reps with the legs interleaved round-robin (a
// frequency dip hits every candidate, not just one). C is restored
// from a pristine copy before every rep — timing repeated multiply-adds
// into an already-converged C would let the conditional store never
// fire and flatter whichever leg ran last. The fused leg re-packs B
// inside the timed region (pack is O(n²) against the O(n³) sweep); the
// "gemmreuse" experiment measures what pack amortization adds on top.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/semiring"
)

// gemmJSONPath is where Gemm drops its raw measurements, relative to the
// working directory (the repo root under `make bench-gemm`). The
// BENCH_GEMM_OUT environment variable overrides it — the test harness
// points it at a temp dir so `go test` never litters the package dir.
const gemmJSONPath = "BENCH_gemm.json"

// gemmOutPath resolves the JSON output path.
func gemmOutPath() string {
	if p := os.Getenv("BENCH_GEMM_OUT"); p != "" {
		return p
	}
	return gemmJSONPath
}

// GemmRow is one (size, density) cell of the sweep.
type GemmRow struct {
	N       int     `json:"n"`
	Density float64 `json:"density"`

	RefNS    int64 `json:"ref_ns"`
	StagedNS int64 `json:"staged_ns"`
	FusedNS  int64 `json:"fused_ns"`

	RefGops    float64 `json:"ref_gops"`
	StagedGops float64 `json:"staged_gops"`
	FusedGops  float64 `json:"fused_gops"`

	// SpeedupVsSeed is fused/seed; SpeedupVsStaged is fused/staged —
	// the number the ≥1.3× dense-panel gate reads.
	SpeedupVsSeed   float64 `json:"speedup_vs_seed"`
	SpeedupVsStaged float64 `json:"speedup_vs_staged"`

	DenseDispatch bool                    `json:"dense_dispatch"`
	Kernel        semiring.KernelCounters `json:"kernel_delta"`
}

// GemmResult is the BENCH_gemm.json payload.
type GemmResult struct {
	Quick   bool                `json:"quick"`
	Reps    int                 `json:"reps"`
	Machine MachineInfo         `json:"machine"`
	Tuning  semiring.GemmTuning `json:"tuning"`
	Rows    []GemmRow           `json:"rows"`
}

// gemmRandMat builds an n×n operand with the given finite fraction;
// finite entries are positive weights, the rest Inf.
func gemmRandMat(rng *rand.Rand, n int, density float64) semiring.Mat {
	m := semiring.NewInfMat(n, n)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Float64()*10 + 0.01
		}
	}
	return m
}

// Gemm runs the density × size sweep and writes BENCH_gemm.json.
func Gemm(quick bool) *Report {
	sizes := []int{256, 512, 768, 1024}
	reps := 5
	if quick {
		sizes = []int{96, 192}
		reps = 3
	}
	densities := []float64{0.05, 0.5, 0.9, 1.0}
	r := &Report{ID: "gemm",
		Title:  "SemiringGemm legs: seed | staged AVX2 (PR 4) | fused packed full-ISA (fused min-plus op = 2 flops; best of interleaved reps)",
		Header: []string{"n", "density", "path", "seed GOP/s", "staged GOP/s", "fused GOP/s", "fused vs staged"}}
	res := GemmResult{Quick: quick, Reps: reps, Machine: CurrentMachine(), Tuning: semiring.CurrentGemmTuning()}
	rng := rand.New(rand.NewSource(7001))
	gateMin, gateCells := 0.0, 0
	for _, n := range sizes {
		for _, d := range densities {
			A := gemmRandMat(rng, n, d)
			B := gemmRandMat(rng, n, d)
			C0 := gemmRandMat(rng, n, 0.3)
			// Sparse cells are cheap and noise-dominated: buy extra reps.
			cellReps := reps
			if d <= 0.1 {
				cellReps = 3 * reps
			}
			row := gemmCell(n, d, cellReps, A, B, C0)
			res.Rows = append(res.Rows, row)
			if n >= 512 && d >= 0.9 {
				if gateCells == 0 || row.SpeedupVsStaged < gateMin {
					gateMin = row.SpeedupVsStaged
				}
				gateCells++
			}
			path := "stream"
			if row.DenseDispatch {
				path = "dense"
			}
			r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", d), path,
				fmt.Sprintf("%.2f", row.RefGops), fmt.Sprintf("%.2f", row.StagedGops),
				fmt.Sprintf("%.2f", row.FusedGops), fmtSpeedup(row.SpeedupVsStaged))
		}
	}
	if path := gemmOutPath(); writeGemmJSON(path, &res) != nil {
		r.AddNote("FAILED to write %s", path)
	} else {
		r.AddNote("raw measurements written to %s", path)
	}
	m := res.Machine
	r.AddNote("host: %s %s/%s, GOMAXPROCS=%d, vector ISA %s %v.", m.GoVersion, m.GOOS, m.GOARCH, m.GOMAXPROCS, m.VectorISA, m.CPUFeatures)
	r.AddNote("staged = PR 4 engine (AVX2 clamp, B re-packed per call); fused = PackPanel + packed-tile sweep at full ISA; all legs bitwise-checked against the seed each cell.")
	if gateCells > 0 {
		r.AddNote("dense-panel gate (n≥512, density≥0.9): min fused-vs-staged speedup %.2f× across %d cells (gate: ≥1.3×).", gateMin, gateCells)
	} else {
		r.AddNote("dense-panel gate cells (n≥512) only run at full scale; rerun without -quick.")
	}
	return r
}

// gemmCell times one (n, density) cell: best-of-reps, legs interleaved,
// C restored from C0 before every timed call.
func gemmCell(n int, d float64, reps int, A, B, C0 semiring.Mat) GemmRow {
	// Correctness cross-check (also warms the pack pool and caches):
	// seed vs staged-AVX2 vs fused must be bitwise identical.
	refC, stC, fuC := C0.Clone(), C0.Clone(), C0.Clone()
	semiring.MinPlusMulAddReference(refC, A, B)
	prev := semiring.SetMaxVectorISA("avx2")
	semiring.MinPlusMulAdd(stC, A, B)
	semiring.SetMaxVectorISA(prev)
	k0 := semiring.ReadKernelCounters()
	P := semiring.PackPanel(B, semiring.Inf)
	semiring.MinPlusMulAddPacked(fuC, A, P)
	P.Release()
	delta := semiring.ReadKernelCounters().Sub(k0)
	if !stC.Equal(refC) || !fuC.Equal(refC) {
		panic(fmt.Sprintf("bench: gemm legs disagree at n=%d density=%.2f (staged=%v fused=%v)",
			n, d, stC.Equal(refC), fuC.Equal(refC)))
	}
	scratch := C0.Clone()
	bestRef, bestSt, bestFu := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < reps; rep++ {
		scratch.Copy(C0)
		if t := timeIt(func() { semiring.MinPlusMulAddReference(scratch, A, B) }); t < bestRef {
			bestRef = t
		}
		scratch.Copy(C0)
		prev := semiring.SetMaxVectorISA("avx2")
		if t := timeIt(func() { semiring.MinPlusMulAdd(scratch, A, B) }); t < bestSt {
			bestSt = t
		}
		semiring.SetMaxVectorISA(prev)
		scratch.Copy(C0)
		if t := timeIt(func() {
			P := semiring.PackPanel(B, semiring.Inf)
			semiring.MinPlusMulAddPacked(scratch, A, P)
			P.Release()
		}); t < bestFu {
			bestFu = t
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	return GemmRow{
		N: n, Density: d,
		RefNS: bestRef.Nanoseconds(), StagedNS: bestSt.Nanoseconds(), FusedNS: bestFu.Nanoseconds(),
		RefGops:         flops / bestRef.Seconds() / 1e9,
		StagedGops:      flops / bestSt.Seconds() / 1e9,
		FusedGops:       flops / bestFu.Seconds() / 1e9,
		SpeedupVsSeed:   bestRef.Seconds() / bestFu.Seconds(),
		SpeedupVsStaged: bestSt.Seconds() / bestFu.Seconds(),
		DenseDispatch:   delta.DenseCalls > 0,
		Kernel:          delta,
	}
}

// writeGemmJSON writes the result as indented JSON.
func writeGemmJSON(path string, res *GemmResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
