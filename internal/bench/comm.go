package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
)

// Comm is an extension experiment for the paper's "communication-
// avoiding" framing (§6 sketches distributed implementations whose etree
// parallelism reduces communication): it measures REAL message/word
// counts of an executable distributed blocked FW (goroutine processes,
// channel transport) and compares the modeled communication volume of
// supernodal FW under proportional etree mapping against dense blocked
// FW across process counts.
func Comm(quick bool) *Report {
	r := &Report{ID: "comm", Title: "EXTENSION — communication: measured distributed BlockedFw + modeled SuperFw volume",
		Header: []string{"graph", "n", "P", "BlockedFw msgs (measured)", "BlockedFw words (measured)", "SuperFw words (model)", "BlockedFw words (model)", "reduction"}}
	side := 32
	if quick {
		side = 12
	}
	g := gen.Grid2D(side, side, gen.WeightUniform, 500)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		r.AddNote("plan: %v", err)
		return r
	}
	A := g.ToDense()
	for _, grid := range [][2]int{{1, 2}, {2, 2}, {2, 4}, {4, 4}} {
		P := grid[0] * grid[1]
		_, stats, err := dist.BlockedFW(A, 32, grid[0], grid[1])
		if err != nil {
			r.AddNote("P=%d: %v", P, err)
			continue
		}
		sv := dist.SuperFWVolume(plan, P)
		bv := dist.BlockedFWVolume(g.N, P)
		r.AddRow(fmt.Sprintf("grid %dx%d", side, side), fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", P),
			fmt.Sprintf("%d", stats.Messages), fmt.Sprintf("%d", stats.Words),
			fmt.Sprintf("%d", sv.Words), fmt.Sprintf("%d", bv.Words),
			fmt.Sprintf("%.1f×", float64(bv.Words)/float64(sv.Words)))
	}
	// A second graph class: geometric (separator √n-ish) at larger n.
	n2 := 2000
	if quick {
		n2 = 300
	}
	g2 := gen.GeometricKNN(n2, 2, 3, gen.WeightUniform, 501)
	plan2, err := core.NewPlan(g2, core.DefaultOptions())
	if err == nil {
		for _, P := range []int{4, 16, 64} {
			sv := dist.SuperFWVolume(plan2, P)
			bv := dist.BlockedFWVolume(g2.N, P)
			r.AddRow("geoknn", fmt.Sprintf("%d", g2.N), fmt.Sprintf("%d", P),
				"-", "-", fmt.Sprintf("%d", sv.Words), fmt.Sprintf("%d", bv.Words),
				fmt.Sprintf("%.1f×", float64(bv.Words)/float64(sv.Words)))
		}
	}
	r.AddNote("measured columns run the executable goroutine+channel simulation; model columns use the 1D owner-computes volume model (internal/dist/volume.go).")
	r.AddNote("the gap grows with P and n: only separator panels travel in the supernodal schedule — the communication avoidance the paper's keyword refers to.")
	return r
}
