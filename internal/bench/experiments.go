package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/apsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/semiring"
)

// Table3 regenerates the paper's Table 3: the test-graph suite with n,
// nnz/n, and the separator quality n/|S| measured by our nested
// dissection.
func Table3(quick bool) *Report {
	r := &Report{ID: "table3", Title: "Test graphs (synthetic analogues of the paper's suite)",
		Header: []string{"Name", "Stands in for", "Class", "n", "nnz/n", "n/|S|"}}
	for _, e := range Catalog() {
		g := e.Build(quick)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: plan failed: %v", e.Name, err)
			continue
		}
		sepRatio := "-"
		if plan.TopSep > 0 {
			sepRatio = fmt.Sprintf("%.1f", float64(g.N)/float64(plan.TopSep))
		}
		r.AddRow(e.Name, e.PaperRow, e.Class,
			fmt.Sprintf("%d", g.N), fmt.Sprintf("%.2f", g.AvgDegree()), sepRatio)
	}
	r.AddNote("n/|S| uses the multilevel-ND top separator; the paper's column used METIS.")
	return r
}

// runAlgo times one full APSP solve (including plan construction for the
// SuperFW family, matching the paper's methodology note that reported
// times exclude pre-processing — so the FW-family numeric time is
// returned separately from plan time).
func runAlgo(algo apsp.Algorithm, g *graph.Graph, threads int) (time.Duration, error) {
	switch algo {
	case apsp.AlgoSuperFW, apsp.AlgoSuperBFS:
		opts := core.DefaultOptions()
		opts.Threads = threads
		if algo == apsp.AlgoSuperBFS {
			opts.Ordering = core.OrderBFS
		}
		plan, err := core.NewPlan(g, opts)
		if err != nil {
			return 0, err
		}
		res, err := plan.Solve()
		if err != nil {
			return 0, err
		}
		return res.NumericTime, nil
	default:
		var err error
		d := timeIt(func() { _, err = apsp.Run(algo, g, threads) })
		return d, err
	}
}

// Fig6a regenerates Fig 6a: normalized execution time of multithreaded
// APSP algorithms on the small-graph suite, with speedups labeled over
// the BlockedFw reference.
func Fig6a(quick bool, threads int) *Report {
	r := &Report{ID: "fig6a", Title: "Small graphs: time normalized to BlockedFw (labels = speedup over BlockedFw)",
		Header: []string{"Graph", "n", "BlockedFw", "SuperBfs", "SuperFw", "Dijkstra"}}
	algos := []apsp.Algorithm{apsp.AlgoBlockedFW, apsp.AlgoSuperBFS, apsp.AlgoSuperFW, apsp.AlgoDijkstra}
	var chartLabels []string
	var chartVals []float64
	for _, e := range Catalog() {
		if !e.Small {
			continue
		}
		g := e.Build(quick)
		times := make([]time.Duration, len(algos))
		failed := false
		for i, a := range algos {
			d, err := runAlgo(a, g, threads)
			if err != nil {
				r.AddNote("%s/%s failed: %v", e.Name, a, err)
				failed = true
				break
			}
			times[i] = d
		}
		if failed {
			continue
		}
		base := float64(times[0])
		row := []string{e.Name, fmt.Sprintf("%d", g.N), fmtDur(times[0])}
		for _, d := range times[1:] {
			row = append(row, fmt.Sprintf("%s (%s)", fmtDur(d), fmtSpeedup(base/float64(d))))
		}
		r.AddRow(row...)
		chartLabels = append(chartLabels, e.Name)
		chartVals = append(chartVals, base/float64(times[2]))
	}
	r.Chart = "SuperFw speedup over BlockedFw (log scale):\n" + LogBarChart(chartLabels, chartVals, 40)
	r.AddNote("threads=%d; FW-family times are numeric phase only (paper §5.1.4 excludes pre-processing).", threads)
	return r
}

// Fig6b regenerates Fig 6b: the large-graph suite where O(n³) algorithms
// are dropped and times are normalized to Dijkstra.
func Fig6b(quick bool, threads int) *Report {
	r := &Report{ID: "fig6b", Title: "Large graphs: time normalized to Dijkstra (labels = speedup over Dijkstra)",
		Header: []string{"Graph", "n", "Dijkstra", "SuperFw", "BoostDijkstra", "DeltaStep"}}
	algos := []apsp.Algorithm{apsp.AlgoDijkstra, apsp.AlgoSuperFW, apsp.AlgoBoostDijkstra, apsp.AlgoDeltaStep}
	var chartLabels []string
	var chartVals []float64
	for _, e := range Catalog() {
		if !e.Large {
			continue
		}
		g := e.Build(quick)
		times := make([]time.Duration, len(algos))
		failed := false
		for i, a := range algos {
			d, err := runAlgo(a, g, threads)
			if err != nil {
				r.AddNote("%s/%s failed: %v", e.Name, a, err)
				failed = true
				break
			}
			times[i] = d
		}
		if failed {
			continue
		}
		base := float64(times[0])
		row := []string{e.Name, fmt.Sprintf("%d", g.N), fmtDur(times[0])}
		for _, d := range times[1:] {
			row = append(row, fmt.Sprintf("%s (%s)", fmtDur(d), fmtSpeedup(base/float64(d))))
		}
		r.AddRow(row...)
		chartLabels = append(chartLabels, e.Name)
		chartVals = append(chartVals, base/float64(times[1]))
	}
	r.Chart = "SuperFw speedup over Dijkstra (log scale; <1x = Dijkstra wins):\n" + LogBarChart(chartLabels, chartVals, 40)
	r.AddNote("threads=%d.", threads)
	return r
}

// fig7Graphs are the four large graphs of Fig 7 (a-d analogues).
func fig7Graphs() []string { return []string{"finance_l", "finance_m", "community_l", "wing"} }

// Fig7 regenerates Fig 7: strong scaling of SuperFw, Dijkstra,
// BoostDijkstra and Δ-stepping over thread counts.
func Fig7(quick bool) *Report {
	threadSweep := []int{1, 2, 4, 8}
	if quick {
		threadSweep = []int{1, 2}
	}
	header := []string{"Graph", "Algorithm"}
	for _, t := range threadSweep {
		header = append(header, fmt.Sprintf("t=%d", t))
	}
	header = append(header, "speedup@max")
	r := &Report{ID: "fig7", Title: "Strong scaling (speedup over the same algorithm at t=1)", Header: header}
	algos := []apsp.Algorithm{apsp.AlgoSuperFW, apsp.AlgoDijkstra, apsp.AlgoBoostDijkstra, apsp.AlgoDeltaStep}
	chartSeries := map[string][]float64{}
	var chartX []float64
	for _, t := range threadSweep {
		chartX = append(chartX, float64(t))
	}
	for gi, name := range fig7Graphs() {
		e, ok := Find(name)
		if !ok {
			continue
		}
		g := e.Build(quick)
		for _, a := range algos {
			row := []string{e.Name, string(a)}
			var t1 time.Duration
			var last float64
			var speedups []float64
			ok := true
			for _, th := range threadSweep {
				d, err := runAlgo(a, g, th)
				if err != nil {
					r.AddNote("%s/%s failed: %v", e.Name, a, err)
					ok = false
					break
				}
				if th == 1 {
					t1 = d
				}
				last = float64(t1) / float64(d)
				speedups = append(speedups, last)
				row = append(row, fmtDur(d))
			}
			if !ok {
				continue
			}
			if gi == 0 {
				chartSeries[string(a)] = speedups
			}
			row = append(row, fmtSpeedup(last))
			r.AddRow(row...)
		}
	}
	if len(chartSeries) > 0 {
		r.Chart = fmt.Sprintf("speedup vs threads on %s (paper Fig 7a analogue):\n", fig7Graphs()[0]) +
			LinePlot(chartX, chartSeries, 48, 10)
	}
	r.AddNote("Speedups are bounded by the physical core count of the host (the paper used 32 cores / 64 hyperthreads).")
	return r
}

// Fig8 regenerates Fig 8: the impact of etree parallelism on SuperFw
// scaling — parallel speedup over the sequential run, with and without
// level scheduling.
func Fig8(quick bool) *Report {
	r := &Report{ID: "fig8", Title: "Impact of etree parallelism on SuperFw (speedup over 1-thread run)",
		Header: []string{"Graph", "n", "t=1", "parallel w/o etree", "parallel with etree", "etree gain"}}
	names := []string{"powergrid_s", "geoknn_s", "road_m", "finance_l"}
	threads := 8
	if quick {
		threads = 2
	}
	var chartLabels []string
	var chartVals []float64
	for _, name := range names {
		e, ok := Find(name)
		if !ok {
			continue
		}
		g := e.Build(quick)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		seq, err := plan.SolveWith(1, false)
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		noEtree, err1 := plan.SolveWith(threads, false)
		withEtree, err2 := plan.SolveWith(threads, true)
		if err1 != nil || err2 != nil {
			r.AddNote("%s: solve failed", name)
			continue
		}
		s1 := float64(seq.NumericTime) / float64(noEtree.NumericTime)
		s2 := float64(seq.NumericTime) / float64(withEtree.NumericTime)
		r.AddRow(e.Name, fmt.Sprintf("%d", g.N), fmtDur(seq.NumericTime),
			fmtSpeedup(s1), fmtSpeedup(s2), fmt.Sprintf("%.2f", s2/s1))
		chartLabels = append(chartLabels, e.Name)
		chartVals = append(chartVals, s2/s1)
	}
	if len(chartVals) > 0 {
		r.Chart = "etree-parallelism gain (with/without level scheduling):\n" + BarChart(chartLabels, chartVals, 36)
	}
	r.AddNote("threads=%d. The paper reports etree parallelism helping most on small graphs with little per-level work.", threads)
	return r
}

// Table2 regenerates Table 2 empirically: measured work-scaling exponents
// on 2D grids (known Θ(√n) separators), where SuperFw's fused-op count
// should grow ≈ n^2.5 against BlockedFw's n³, and SuperFw's critical-path
// proxy stays polylog·√n.
func Table2(quick bool) *Report {
	sides := []int{24, 32, 48, 64, 96}
	if quick {
		sides = []int{12, 16, 24}
	}
	r := &Report{ID: "table2", Title: "Work/depth scaling on 2D grids (measured fused-op counts)",
		Header: []string{"grid", "n", "SuperFw W(n)", "BlockedFw W(n)=n³", "SuperFw D(n) proxy", "concurrency W/D"}}
	var logN, logW, logD []float64
	for _, s := range sides {
		g := gen.Grid2D(s, s, gen.WeightUniform, 200)
		ord := order.GridND(s, s, 32)
		plan, err := core.NewPlan(g, core.Options{Ordering: core.OrderCustom, Custom: &ord, MaxBlock: 64})
		if err != nil {
			r.AddNote("grid %d: %v", s, err)
			continue
		}
		w := plan.PlannedOps()
		d := plan.CriticalPathOps()
		n := int64(g.N)
		r.AddRow(fmt.Sprintf("%dx%d", s, s), fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", w), fmt.Sprintf("%d", n*n*n),
			fmt.Sprintf("%d", d), fmt.Sprintf("%.0f", float64(w)/float64(d)))
		logN = append(logN, math.Log(float64(n)))
		logW = append(logW, math.Log(float64(w)))
		logD = append(logD, math.Log(float64(d)))
	}
	if len(logN) >= 2 {
		r.AddNote("fitted work exponent: W(n) ~ n^%.2f (paper: n^2.5 = n²·|S| with |S|=√n on planar graphs; BlockedFw is n^3).", slope(logN, logW))
		r.AddNote("fitted depth exponent: D(n) ~ n^%.2f (paper: |S|·log²n ⇒ exponent ≈ 0.5 up to polylog).", slope(logN, logD))
	}
	return r
}

// slope returns the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Fig1 regenerates Fig 1: how quickly the Dist matrix densifies during
// Floyd-Warshall when the vertex ordering is not optimal. The reported
// quantity is the density of the TRAILING submatrix A[k:n, k:n] — the
// part still awaiting elimination, whose new finite entries are the
// graph-path analogue of Cholesky fill-in. A random ordering (the paper's
// "not optimal" case) densifies the trailing matrix almost immediately;
// the natural row-major order of a grid behaves like a band ordering;
// nested dissection keeps the trailing matrix sparse until the very end.
func Fig1() *Report {
	r := &Report{ID: "fig1", Title: "Trailing-submatrix density vs FW progress (fill-in analogue)",
		Header: []string{"ordering", "k=0", "k=n/4", "k=n/2", "k=3n/4"}}
	side := 16
	g := gen.Grid2D(side, side, gen.WeightUniform, 300)
	n := g.N
	rng := rand.New(rand.NewSource(301))
	randPerm := rng.Perm(n)
	ndOrd := order.GridND(side, side, 16)
	for _, mode := range []struct {
		name string
		perm []int
	}{
		{"random (not optimal)", randPerm},
		{"natural (row-major band)", nil},
		{"nested dissection", ndOrd.Perm},
	} {
		pg := g
		if mode.perm != nil {
			pg = g.Permute(mode.perm)
		}
		D := pg.ToDense()
		marks := map[int]bool{0: true, n / 4: true, n / 2: true, 3 * n / 4: true}
		row := []string{mode.name}
		for k := 0; k < n; k++ {
			if marks[k] {
				row = append(row, fmt.Sprintf("%.3f", trailingDensity(D, k)))
			}
			fwStep(D, k)
		}
		r.AddRow(row...)
	}
	// The worked 6-vertex example of the paper's Fig 1.
	ex := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 0.3}, {U: 1, V: 2, W: 0.2}, {U: 1, V: 3, W: 0.2},
		{U: 0, V: 4, W: 0.6}, {U: 0, V: 5, W: 0.6},
	})
	D := ex.ToDense()
	before := D.CountFinite()
	fwStep(D, 0)
	fwStep(D, 1)
	after2 := D.CountFinite()
	semiring.FloydWarshall(D)
	r.AddNote("paper's 6-vertex example: %d finite entries initially, %d after two iterations, %d at closure (matches Fig 1b: fully dense).",
		before, after2, D.CountFinite())
	r.AddNote("with the hub vertex ordered first (natural), two iterations already densify the matrix; ND defers fill to the final separator eliminations.")
	return r
}

func density(D semiring.Mat) float64 {
	return float64(D.CountFinite()) / float64(D.Rows*D.Cols)
}

// trailingDensity returns the finite fraction of A[k:n, k:n].
func trailingDensity(D semiring.Mat, k int) float64 {
	n := D.Rows
	if k >= n {
		return 1
	}
	return density(D.View(k, k, n-k, n-k))
}

// fwStep performs one outer iteration of scalar FW.
func fwStep(D semiring.Mat, k int) { semiring.FloydWarshallStep(D, k) }

// Kernel regenerates the §5.1.2 kernel-rate measurements: SemiringGemm
// throughput across operand sizes, and the aggregate BlockedFw rate.
func Kernel(quick bool) *Report {
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{32, 64}
	}
	r := &Report{ID: "kernel", Title: "SemiringGemm kernel rate (fused min-plus op = 2 flops, as the paper counts)",
		Header: []string{"n", "time", "Gflop/s"}}
	for _, n := range sizes {
		A := randDense(n, 400+int64(n))
		B := randDense(n, 500+int64(n))
		C := semiring.NewInfMat(n, n)
		// Repeat small sizes for stable timing.
		reps := 1
		if n <= 128 {
			reps = 8
		}
		d := timeIt(func() {
			for i := 0; i < reps; i++ {
				semiring.MinPlusMulAdd(C, A, B)
			}
		})
		flops := 2 * float64(n) * float64(n) * float64(n) * float64(reps)
		r.AddRow(fmt.Sprintf("%d", n), fmtDur(d), fmt.Sprintf("%.2f", flops/d.Seconds()/1e9))
	}
	// Aggregate BlockedFw rate.
	n := 1024
	if quick {
		n = 256
	}
	g := gen.ErdosRenyi(n, 8, gen.WeightUniform, 600)
	d := timeIt(func() { apsp.BlockedFW(g, 0) })
	flops := 2 * float64(n) * float64(n) * float64(n)
	r.AddRow(fmt.Sprintf("BlockedFw n=%d", n), fmtDur(d), fmt.Sprintf("%.2f", flops/d.Seconds()/1e9))
	r.AddNote("paper: 10.2 Gflop/s per core for SemiringGemm (hand-tuned SIMD), 244 Gflop/s for BlockedFw on 32 cores; pure Go reaches a lower absolute rate, same kernel-bound shape.")
	return r
}

func randDense(n int, seed int64) semiring.Mat {
	g := gen.ErdosRenyi(n, float64(n)/4, gen.WeightUniform, seed)
	return g.ToDense()
}

// Preproc regenerates the §5.1.4 accounting: pre-processing (ordering +
// symbolic analysis) time as a fraction of end-to-end SuperFw time.
func Preproc(quick bool) *Report {
	r := &Report{ID: "preproc", Title: "Pre-processing overhead of SuperFw",
		Header: []string{"Graph", "n", "ordering", "symbolic", "numeric", "preproc %"}}
	names := []string{"geoknn_s", "powergrid_m", "mesh3d_s", "road_m", "finance_m"}
	worst := 0.0
	for _, name := range names {
		e, ok := Find(name)
		if !ok {
			continue
		}
		g := e.Build(quick)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		res, err := plan.Solve()
		if err != nil {
			r.AddNote("%s: %v", name, err)
			continue
		}
		pre := plan.OrderTime + plan.SymbolicTime
		frac := 100 * float64(pre) / float64(pre+res.NumericTime)
		if frac > worst {
			worst = frac
		}
		r.AddRow(e.Name, fmt.Sprintf("%d", g.N), fmtDur(plan.OrderTime), fmtDur(plan.SymbolicTime),
			fmtDur(res.NumericTime), fmt.Sprintf("%.1f%%", frac))
	}
	r.AddNote("worst case %.1f%% (paper: worst case 18%% of multithreaded execution time).", worst)
	return r
}

// Experiments lists every experiment id in run order: one per paper
// table/figure plus the "factor" extension study.
func Experiments() []string {
	return []string{"fig1", "table2", "table3", "fig6a", "fig6b", "fig7", "fig8", "kernel", "gemm", "gemmvec", "gemmreuse", "preproc", "factor", "queryload", "crossover", "comm", "update"}
}

// Run executes the named experiment.
func Run(id string, quick bool, threads int) (*Report, error) {
	switch id {
	case "fig1":
		return Fig1(), nil
	case "table2":
		return Table2(quick), nil
	case "table3":
		return Table3(quick), nil
	case "fig6a":
		return Fig6a(quick, threads), nil
	case "fig6b":
		return Fig6b(quick, threads), nil
	case "fig7":
		return Fig7(quick), nil
	case "fig8":
		return Fig8(quick), nil
	case "kernel":
		return Kernel(quick), nil
	case "gemm":
		return Gemm(quick), nil
	case "gemmvec":
		return GemmVec(quick), nil
	case "gemmreuse":
		return GemmReuse(quick), nil
	case "preproc":
		return Preproc(quick), nil
	case "factor":
		return Factor(quick), nil
	case "queryload":
		return QueryLoad(quick, threads), nil
	case "crossover":
		return Crossover(quick, threads), nil
	case "comm":
		return Comm(quick), nil
	case "update":
		return Update(quick, threads), nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Experiments())
}

// RunAll executes the given experiments (all when ids is empty), writing
// markdown to w as each finishes.
func RunAll(ids []string, quick bool, threads int, w io.Writer) error {
	if len(ids) == 0 {
		ids = Experiments()
	}
	sort.Strings(ids)
	for _, id := range ids {
		rep, err := Run(id, quick, threads)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, rep.Markdown()); err != nil {
			return err
		}
	}
	return nil
}
