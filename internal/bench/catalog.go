package bench

import (
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Entry is one synthetic stand-in for a row of the paper's Table 3.
// Quick mode shrinks every graph (used by unit tests and -quick runs);
// full mode uses sizes a single-machine container can hold (the dense
// distance matrix is n² float64, so n is capped well below the paper's
// 114k-vertex maximum — the structural classes are what matter).
type Entry struct {
	Name     string // our graph name
	PaperRow string // the Table 3 row this stands in for
	Class    string // structural class
	Small    bool   // member of the Fig 6a (small-graph) suite
	Large    bool   // member of the Fig 6b (large-graph) suite
	Build    func(quick bool) *graph.Graph
}

// scale returns full in normal mode and a reduced size in quick mode.
func scale(quick bool, full, small int) int {
	if quick {
		return small
	}
	return full
}

// Catalog returns every test graph, one per Table 3 row.
func Catalog() []Entry {
	return []Entry{
		{
			Name: "powergrid_s", PaperRow: "USpowerGrid", Class: "power network", Small: true,
			Build: func(q bool) *graph.Graph { return gen.PowerGrid(scale(q, 1600, 300), 101) },
		},
		{
			Name: "powergrid_m", PaperRow: "OPF_6000", Class: "power network", Small: true,
			Build: func(q bool) *graph.Graph { return gen.PowerGrid(scale(q, 2400, 400), 102) },
		},
		{
			Name: "mesh3d_s", PaperRow: "nd6k", Class: "3D mesh", Small: true,
			Build: func(q bool) *graph.Graph {
				s := scale(q, 12, 6)
				return gen.Grid3D(s, s, s, gen.WeightUniform, 103)
			},
		},
		{
			Name: "structural2d", PaperRow: "oilpan", Class: "structural", Large: true,
			Build: func(q bool) *graph.Graph {
				s := scale(q, 64, 16)
				return gen.Grid2D(s, s, gen.WeightUniform, 104)
			},
		},
		{
			Name: "finance_l", PaperRow: "finan512", Class: "optimization", Large: true,
			Build: func(q bool) *graph.Graph { return gen.Finance(scale(q, 96, 12), 48, 105) },
		},
		{
			Name: "finance_m", PaperRow: "net4-1", Class: "optimization", Large: true,
			Build: func(q bool) *graph.Graph { return gen.Finance(scale(q, 64, 10), 64, 106) },
		},
		{
			Name: "community_s", PaperRow: "c-42", Class: "optimization", Small: true,
			Build: func(q bool) *graph.Graph { return gen.CommunityGraph(scale(q, 1500, 300), 107) },
		},
		{
			Name: "community_l", PaperRow: "email-Enron", Class: "social network", Large: true,
			Build: func(q bool) *graph.Graph { return gen.CommunityGraph(scale(q, 4000, 500), 108) },
		},
		{
			Name: "geoknn_s", PaperRow: "delaunay_n14", Class: "planar triangulation", Small: true,
			Build: func(q bool) *graph.Graph {
				return gen.GeometricKNN(scale(q, 2048, 256), 2, 3, gen.WeightEuclidean, 109)
			},
		},
		{
			Name: "geoknn_l", PaperRow: "delaunay_n16", Class: "planar triangulation", Large: true,
			Build: func(q bool) *graph.Graph {
				return gen.GeometricKNN(scale(q, 5000, 512), 2, 3, gen.WeightEuclidean, 110)
			},
		},
		{
			Name: "sphere", PaperRow: "fe_sphere", Class: "2D mesh", Small: true,
			Build: func(q bool) *graph.Graph {
				return gen.GeometricKNN(scale(q, 1600, 256), 2, 4, gen.WeightEuclidean, 111)
			},
		},
		{
			Name: "road_l", PaperRow: "luxembourg_osm", Class: "road network", Large: true,
			Build: func(q bool) *graph.Graph {
				s := scale(q, 80, 20)
				return gen.RoadNetwork(s, s, 0.35, 112)
			},
		},
		{
			Name: "mesh3d_l", PaperRow: "fe_tooth", Class: "3D mesh", Large: true,
			Build: func(q bool) *graph.Graph {
				return gen.Grid3D(scale(q, 17, 7), scale(q, 16, 7), scale(q, 15, 6), gen.WeightUniform, 113)
			},
		},
		{
			Name: "wing", PaperRow: "wing", Class: "3D mesh (sparse)", Large: true,
			Build: func(q bool) *graph.Graph {
				return gen.GeometricKNN(scale(q, 4500, 400), 3, 2, gen.WeightEuclidean, 114)
			},
		},
		{
			Name: "road_m", PaperRow: "t60k", Class: "sparse mesh", Large: true,
			Build: func(q bool) *graph.Graph {
				s := scale(q, 64, 16)
				return gen.RoadNetwork(s, s, 0.2, 115)
			},
		},
		{
			Name: "er", PaperRow: "G67", Class: "random", Small: true,
			Build: func(q bool) *graph.Graph { return gen.ErdosRenyi(scale(q, 1024, 200), 4, gen.WeightUniform, 116) },
		},
		{
			Name: "ba_dense", PaperRow: "EB_8192_256", Class: "preferential attachment", Small: true,
			Build: func(q bool) *graph.Graph {
				return gen.BarabasiAlbert(scale(q, 1200, 200), scale(q, 64, 8), gen.WeightUniform, 117)
			},
		},
		{
			Name: "ba_sparse", PaperRow: "EB_16384_64", Class: "preferential attachment", Small: true,
			Build: func(q bool) *graph.Graph {
				return gen.BarabasiAlbert(scale(q, 1600, 250), scale(q, 32, 6), gen.WeightUniform, 118)
			},
		},
		{
			Name: "rgg2d", PaperRow: "rgg2d_14", Class: "random geometric", Small: true,
			Build: func(q bool) *graph.Graph {
				n := scale(q, 1600, 256)
				return gen.GeometricRadius(n, 2, radiusForDeg(n, 2, 20), gen.WeightUniform, 119)
			},
		},
		{
			Name: "rgg3d", PaperRow: "rgg3d_14", Class: "random geometric", Small: true,
			Build: func(q bool) *graph.Graph {
				n := scale(q, 1500, 256)
				return gen.GeometricRadius(n, 3, radiusForDeg(n, 3, 30), gen.WeightUniform, 120)
			},
		},
		{
			Name: "hypercube", PaperRow: "hypercube_14", Class: "hypercube", Small: true,
			Build: func(q bool) *graph.Graph { return gen.Hypercube(scale(q, 11, 8), gen.WeightUniform, 121) },
		},
	}
}

// radiusForDeg returns the radius giving the target average degree for n
// uniform points in the unit dim-cube: deg ≈ n·V_d·r^d with V_2 = π,
// V_3 = 4π/3.
func radiusForDeg(n, dim int, deg float64) float64 {
	if dim == 2 {
		return math.Sqrt(deg / (math.Pi * float64(n)))
	}
	return math.Cbrt(deg / (4 * math.Pi / 3 * float64(n)))
}

// Find returns the catalog entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
