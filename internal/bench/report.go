// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5): the test-graph catalog
// (Table 3), the asymptotic work study (Table 2), the small- and
// large-graph algorithm comparisons (Fig 6a/6b), strong scaling (Fig 7),
// the etree-parallelism ablation (Fig 8), the SemiringGemm kernel rates
// (§5.1.2), and pre-processing overhead (§5.1.4).
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Report is a rendered experiment: a titled table plus free-form notes
// and an optional ASCII chart (the figure form of figure experiments).
type Report struct {
	ID     string // experiment id, e.g. "fig6a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Chart  string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a note line rendered under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the report as a GitHub-flavored markdown section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
		for _, row := range r.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	if r.Chart != "" {
		b.WriteString("```\n" + r.Chart + "\n```\n\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// fmtDur renders a duration with 3 significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtSpeedup renders a speedup factor the way the paper labels its bars.
func fmtSpeedup(x float64) string {
	switch {
	case x >= 100:
		return fmt.Sprintf("%.0f×", x)
	case x >= 10:
		return fmt.Sprintf("%.1f×", x)
	default:
		return fmt.Sprintf("%.2f×", x)
	}
}

// timeIt runs fn once and returns the elapsed wall time.
func timeIt(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
