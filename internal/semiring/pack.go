package semiring

// Panel packing and tuning knobs for the adaptive GEMM engine (see
// gemm.go for the dispatch itself).
//
// The dense path copies each kTile×jTile tile of B into contiguous,
// cache-line-aligned scratch before the i-sweep, so the register-blocked
// micro-kernel streams B rows at unit stride regardless of B's parent
// stride, and one packed tile is reused across every row quad of A.
// Scratch buffers are pooled: a solve issues thousands of panel updates
// and the pool reduces that to a handful of live buffers per worker.

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// GemmTuning is the machine-dependent knob set of the adaptive GEMM
// engine. The zero value is invalid; start from DefaultGemmTuning.
// Process-wide — install with SetGemmTuning (see AutotuneGemm in core
// for picking values empirically).
type GemmTuning struct {
	// KTile×JTile is the packed B tile shape of the dense path. The
	// tile plus a few C-row segments should fit L1 (64×512 doubles =
	// 32 KiB).
	KTile int `json:"k_tile"`
	JTile int `json:"j_tile"`
	// GemmSmall is the operand dimension below which the streaming path
	// runs untiled (matching the seed kernel's threshold).
	GemmSmall int `json:"gemm_small"`
	// DenseMinFinite is the sampled finite fraction of A at or above
	// which a call dispatches to the packed register-blocked path.
	// Below it the Inf-skip streaming kernel wins: skipped B-row passes
	// beat better blocking (measured crossover ≈0.7–0.9 finite).
	DenseMinFinite float64 `json:"dense_min_finite"`
	// DenseMinOps is the r·m·c floor for the dense path: below it the
	// packing overhead cannot amortize and sampling is skipped.
	DenseMinOps int `json:"dense_min_ops"`
	// ParMinRows and ParMinOps gate i-range sharding of one large GEMM
	// across workers: both must be met, and the shards must not alias
	// (see overlaps in gemm.go).
	ParMinRows int `json:"par_min_rows"`
	ParMinOps  int `json:"par_min_ops"`
	// FusedMinFinite is the sampled finite fraction of a B operand at or
	// above which PackPanel packs it eagerly for the fused pipeline.
	// Below it the panel stays in stream mode and MulAddPacked falls back
	// to the Inf-skip streaming kernel against the original operand. Set
	// lower than DenseMinFinite: a pack is amortized over every reuse, so
	// fusing pays at densities where a single staged call would stream.
	FusedMinFinite float64 `json:"fused_min_finite"`
}

// DefaultGemmTuning is the shipped configuration: a 64×512 packed tile
// (32 KiB, one L1 way set), dense dispatch at ≥85% sampled finite, and
// i-sharding only for GEMMs big enough to amortize fork/join.
func DefaultGemmTuning() GemmTuning {
	return GemmTuning{
		KTile:          64,
		JTile:          512,
		GemmSmall:      768,
		DenseMinFinite: 0.85,
		DenseMinOps:    1 << 21, // ≈128³ fused ops
		ParMinRows:     192,
		ParMinOps:      1 << 24,
		FusedMinFinite: 0.60,
	}
}

// GemmTuningCandidates is the default candidate set AutotuneGemm times:
// the shipped default plus tile-shape and threshold variations that won
// on at least one tested host.
func GemmTuningCandidates() []GemmTuning {
	base := DefaultGemmTuning()
	mk := func(kt, jt int, thresh float64, small int) GemmTuning {
		t := base
		t.KTile, t.JTile, t.DenseMinFinite, t.GemmSmall = kt, jt, thresh, small
		return t
	}
	fused := func(kt, jt int, thresh float64, small int, fmin float64) GemmTuning {
		t := mk(kt, jt, thresh, small)
		t.FusedMinFinite = fmin
		return t
	}
	return []GemmTuning{
		base,
		mk(64, 512, 0.70, 768),
		mk(64, 256, 0.85, 768),
		mk(96, 384, 0.85, 768),
		mk(48, 512, 0.95, 512),
		mk(64, 512, 0.85, 1024),
		// Fused-crossover variants: same shapes, earlier/later eager
		// packing so AutotuneGemm tunes the fused-vs-stream dispatch
		// instead of guessing it.
		fused(64, 512, 0.85, 768, 0.40),
		fused(64, 512, 0.85, 768, 0.80),
	}
}

// valid clamps nonsensical values instead of panicking: tuning is a
// perf knob and must never take correctness down with it.
func (t GemmTuning) valid() GemmTuning {
	d := DefaultGemmTuning()
	if t.KTile < 4 {
		t.KTile = d.KTile
	}
	if t.JTile < 8 {
		t.JTile = d.JTile
	}
	if t.GemmSmall < 1 {
		t.GemmSmall = d.GemmSmall
	}
	if t.DenseMinOps < 1 {
		t.DenseMinOps = d.DenseMinOps
	}
	if t.ParMinRows < 8 {
		t.ParMinRows = 8
	}
	if t.ParMinOps < 1 {
		t.ParMinOps = d.ParMinOps
	}
	return t
}

var gemmTuning atomic.Pointer[GemmTuning]

func init() {
	t := DefaultGemmTuning()
	gemmTuning.Store(&t)
}

// CurrentGemmTuning returns the active tuning.
func CurrentGemmTuning() GemmTuning { return *gemmTuning.Load() }

// SetGemmTuning installs a new process-wide tuning (with invalid fields
// clamped to defaults) and returns the previous one. Safe to call
// concurrently with running kernels: each call reads the pointer once.
func SetGemmTuning(t GemmTuning) GemmTuning {
	t = t.valid()
	return *gemmTuning.Swap(&t)
}

// packPool recycles packed-tile scratch. Buffers are stored pre-aligned
// so Get never re-slices a warm buffer.
var packPool = sync.Pool{}

// getPackBuf returns a cache-line-aligned scratch slice of length n.
func getPackBuf(n int) []float64 {
	if v := packPool.Get(); v != nil {
		if buf := *(v.(*[]float64)); cap(buf) >= n {
			return buf[:n]
		}
	}
	// Over-allocate by one cache line and slide to a 64-byte boundary;
	// the aligned sub-slice keeps the backing array alive in the pool.
	raw := make([]float64, n+8)
	off := 0
	if rem := uintptr(unsafe.Pointer(unsafe.SliceData(raw))) & 63; rem != 0 {
		off = int((64 - rem) / 8)
	}
	return raw[off : off+n]
}

// putPackBuf returns a scratch slice to the pool.
func putPackBuf(buf []float64) {
	buf = buf[:cap(buf)]
	packPool.Put(&buf)
}

// overlaps reports whether two float64 slices share backing memory.
// The dispatch uses it to refuse i-range sharding for aliased calls
// (panel updates legitimately pass C aliasing A or B); pointer
// comparison is exact because Go slices never move independently of
// their backing array.
func overlaps(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	pb := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	return pa < pb+8*uintptr(len(b)) && pb < pa+8*uintptr(len(a))
}

// overlapsInt is overlaps for next-hop storage.
func overlapsInt(a, b []int32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	pb := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	return pa < pb+4*uintptr(len(b)) && pb < pa+4*uintptr(len(a))
}

// matOverlaps reports whether two matrix views share backing memory.
func matOverlaps(a, b Mat) bool { return overlaps(a.Data, b.Data) }

// sampleFinite estimates the finite fraction of A (entries ≠ zero, the
// semiring's "no path" value) from a strided grid of at most 16×16
// probes — a few hundred loads against the ≥DenseMinOps fused ops the
// answer steers, so the sampling cost is noise even when the verdict is
// "stream".
func sampleFinite(A Mat, zero float64) float64 {
	ri := A.Rows/16 + 1
	ci := A.Cols/16 + 1
	finite, total := 0, 0
	for i := 0; i < A.Rows; i += ri {
		row := A.Row(i)
		for j := 0; j < len(row); j += ci {
			if row[j] != zero {
				finite++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(finite) / float64(total)
}

// packTile copies the kh×jh tile of B at (k0, j0) into buf (row-major,
// stride jh) and bumps the packed-bytes counter. The copy is a snapshot:
// when C aliases B (panel updates), later writes to C are deliberately
// not observed by the rest of the tile's i-sweep — see the aliasing
// argument in gemm.go.
func packTile(buf []float64, B Mat, k0, kh, j0, jh int) {
	for k := 0; k < kh; k++ {
		copy(buf[k*jh:(k+1)*jh], B.Row(k0 + k)[j0:j0+jh])
	}
	kernelStats.packedBytes.Add(uint64(kh * jh * 8))
}
