//go:build !amd64

package semiring

// Non-amd64 fallback: no vector kernel; the scalar register-blocked
// quad kernel in microkernel.go handles every tile.

var useAVX2 = false

func minPlusTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	return false
}
