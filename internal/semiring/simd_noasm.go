//go:build !amd64

package semiring

// Portable fallback for non-amd64 targets (arm64 included): no
// hand-written vector kernel; every tile runs the scalar 4-row × 2-k
// register-blocked quad kernel in microkernel.go. That IS the portable
// 4-wide path — the quad kernel keeps eight A scalars and four C rows
// live, and Go's min/max builtins lower to FMIND/FMAXD on arm64, so
// the compiler emits branchless NEON-register code for the inner loop
// without asm to rot. The GOARCH=arm64 cross-build CI leg keeps this
// file and the dispatch hooks compiling.

var (
	useAVX2   = false
	useAVX512 = false
)

func minPlusTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	return false
}

func maxMinTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	return false
}

func minPlusPathsTileVec(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) bool {
	return false
}

func maxMinPathsTileVec(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) bool {
	return false
}

// VectorISA reports the active SIMD dispatch level.
func VectorISA() string { return "scalar" }

// SetMaxVectorISA is a no-op off amd64 (the dispatch is already at the
// portable floor); it returns the current level.
func SetMaxVectorISA(string) string { return "scalar" }

// CPUFeatures lists detected ISA features; empty means the portable
// scalar kernels are in use.
func CPUFeatures() []string { return nil }
