package semiring

// ISA-ablation benchmarks: the same packed dense multiply at each SIMD
// dispatch level. BenchmarkISAAVX2 approximates the PR 4 kernel tier;
// the avx512/avx2 ratio is the fused pipeline's wider-SIMD headroom on
// the host (gated in TestFusedDenseSpeedupGate when FUSED_GATE=1).

import (
	"math/rand"
	"testing"
)

func benchISA(b *testing.B, level string) {
	prev := SetGemmTuning(fusedTunings()["pack-dense"])
	b.Cleanup(func() { SetGemmTuning(prev) })
	prevISA := SetMaxVectorISA(level)
	b.Cleanup(func() { SetMaxVectorISA(prevISA) })
	rng := rand.New(rand.NewSource(47))
	A := diffMat(rng, 256, 256, 1, Inf)
	B := diffMat(rng, 256, 256, 1, Inf)
	C := diffMat(rng, 256, 256, 0.5, Inf)
	P := PackPanel(B, Inf)
	b.Cleanup(P.Release)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusMulAddPacked(C, A, P)
	}
	b.SetBytes(0)
	ops := float64(256*256*256) * 2
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GOP/s")
}

func BenchmarkISAScalar(b *testing.B) { benchISA(b, "scalar") }
func BenchmarkISAAVX2(b *testing.B)   { benchISA(b, "avx2") }
func BenchmarkISAAVX512(b *testing.B) { benchISA(b, "avx512") }
