package semiring

// Max-min ("bottleneck") semiring kernels: ⊕ = max, ⊗ = min. Over this
// semiring the closure of a capacity matrix is the widest-path (maximum
// bottleneck) matrix: D[i][j] is the largest capacity c such that some
// i→j path uses only edges of capacity ≥ c.
//
// The additive identity ("no path") is -Inf and the multiplicative
// identity (empty path) is +Inf, so diagonals of capacity matrices are
// +Inf and non-edges are -Inf. The same in-place update arguments as the
// min-plus kernels hold with the order flipped: values only increase,
// every value is a real path bottleneck, and the closed diagonal block's
// +Inf diagonal makes the aliased row update a no-op.
//
// The paper frames Floyd-Warshall as Gaussian elimination over a
// semiring; these kernels plug into the identical supernodal engine
// (sparsity is a property of the pattern, not of the algebra), which is
// exactly the generality §2 and §7 of the paper argue for.

import "repro/internal/par"

// MaxMinMulAdd computes C[i][j] = max(C[i][j], max_k min(A[i][k], B[k][j])).
// It shares the adaptive dense/stream dispatch and i-sharding of
// MinPlusMulAdd, with -Inf as the "no path" value the density sampler
// and the streaming skip key on.
func MaxMinMulAdd(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MaxMinMulAdd shape mismatch")
	}
	maxMinAdaptive(C, A, B, true)
}

// MaxMinMulAddSerial is MaxMinMulAdd pinned to the calling goroutine
// (see MinPlusMulAddSerial).
func MaxMinMulAddSerial(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MaxMinMulAdd shape mismatch")
	}
	maxMinAdaptive(C, A, B, false)
}

func maxMinAdaptive(C, A, B Mat, allowShard bool) {
	kernelStats.calls.Add(1)
	t := CurrentGemmTuning()
	dense := wantDense(t, A, C.Cols, -Inf)
	if dense {
		kernelStats.dense.Add(1)
	} else {
		kernelStats.stream.Add(1)
	}
	run := func(C, A Mat) {
		if dense {
			maxMinDense(C, A, B, t)
		} else {
			maxMinStream(C, A, B)
		}
	}
	if allowShard && wantShard(t, C.Rows, A.Cols, C.Cols) &&
		!matOverlaps(C, A) && !matOverlaps(C, B) {
		par.ForRanges(C.Rows, 0, t.ParMinRows, func(lo, hi int) {
			kernelStats.parShards.Add(1)
			run(C.View(lo, 0, hi-lo, C.Cols), A.View(lo, 0, hi-lo, A.Cols))
		})
		return
	}
	run(C, A)
}

// maxMinDense is the packed register-blocked path over the bottleneck
// semiring.
func maxMinDense(C, A, B Mat, t GemmTuning) {
	kt, jt := t.KTile, t.JTile
	buf := getPackBuf(kt * jt)
	for k0 := 0; k0 < A.Cols; k0 += kt {
		kh := min(kt, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += jt {
			jh := min(jt, C.Cols-j0)
			packTile(buf, B, k0, kh, j0, jh)
			maxMinTile(C, A, buf[:kh*jh], k0, kh, j0, jh)
		}
	}
	putPackBuf(buf)
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// maxMinStream is the -Inf-skip streaming path.
func maxMinStream(C, A, B Mat) {
	m := A.Cols
	negInf := -Inf
	var touched uint64
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == negInf {
				continue // min(-Inf, b) = -Inf never improves a max
			}
			brow := B.Row(k)
			cr := crow[:len(brow)]
			touched += uint64(len(brow))
			for j, b := range brow {
				v := b
				if aik < b {
					v = aik
				}
				if v > cr[j] {
					cr[j] = v
				}
			}
		}
	}
	kernelStats.fusedOps.Add(touched)
}

// MaxMinMulAddPaths is MaxMinMulAdd with next-hop maintenance (see
// MinPlusMulAddPaths).
func MaxMinMulAddPaths(C, A, B Mat, nextC, nextA IntMat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MaxMinMulAddPaths shape mismatch")
	}
	if nextC.Rows != C.Rows || nextC.Cols != C.Cols || nextA.Rows != A.Rows || nextA.Cols != A.Cols {
		panic("semiring: MaxMinMulAddPaths next-hop shape mismatch")
	}
	kernelStats.calls.Add(1)
	t := CurrentGemmTuning()
	dense := wantDense(t, A, C.Cols, -Inf)
	if dense {
		kernelStats.dense.Add(1)
	} else {
		kernelStats.stream.Add(1)
	}
	run := func(C, A Mat, nc, na IntMat) {
		if dense {
			maxMinPathsDense(C, A, B, nc, na, t)
		} else {
			maxMinPathsStream(C, A, B, nc, na)
		}
	}
	if wantShard(t, C.Rows, A.Cols, C.Cols) &&
		!matOverlaps(C, A) && !matOverlaps(C, B) && !overlapsInt(nextC.Data, nextA.Data) {
		par.ForRanges(C.Rows, 0, t.ParMinRows, func(lo, hi int) {
			kernelStats.parShards.Add(1)
			run(C.View(lo, 0, hi-lo, C.Cols), A.View(lo, 0, hi-lo, A.Cols),
				nextC.View(lo, 0, hi-lo, nextC.Cols), nextA.View(lo, 0, hi-lo, nextA.Cols))
		})
		return
	}
	run(C, A, nextC, nextA)
}

// maxMinPathsDense is the packed register-blocked path with next-hop
// maintenance.
func maxMinPathsDense(C, A, B Mat, nextC, nextA IntMat, t GemmTuning) {
	kt, jt := t.KTile, t.JTile
	buf := getPackBuf(kt * jt)
	for k0 := 0; k0 < A.Cols; k0 += kt {
		kh := min(kt, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += jt {
			jh := min(jt, C.Cols-j0)
			packTile(buf, B, k0, kh, j0, jh)
			maxMinPathsTile(C, A, nextC, nextA, buf[:kh*jh], k0, kh, j0, jh)
		}
	}
	putPackBuf(buf)
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// maxMinPathsStream is the -Inf-skip streaming path with next-hop
// maintenance.
func maxMinPathsStream(C, A, B Mat, nextC, nextA IntMat) {
	m := A.Cols
	negInf := -Inf
	var touched uint64
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		ncrow := nextC.Row(i)
		narow := nextA.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == negInf {
				continue
			}
			hop := narow[k]
			brow := B.Row(k)
			cr := crow[:len(brow)]
			nr := ncrow[:len(brow)]
			touched += uint64(len(brow))
			for j, b := range brow {
				v := b
				if aik < b {
					v = aik
				}
				if v > cr[j] {
					cr[j] = v
					nr[j] = hop
				}
			}
		}
	}
	kernelStats.fusedOps.Add(touched)
}

// MaxMinVecMatAdd computes y = y ⊕ (x ⊗ A) over the bottleneck
// semiring for a row vector x (len = A.Rows) and y (len = A.Cols),
// with the same -Inf fast path as MinPlusVecMatAdd: a -Inf entry of x
// bottlenecks every candidate to -Inf, so its whole A-row pass is
// skipped. The SSSP sweeps over widest-path factors hit that
// constantly (ancestor panels unreachable from the source).
func MaxMinVecMatAdd(y, x []float64, A Mat) {
	if len(x) != A.Rows || len(y) != A.Cols {
		panic("semiring: MaxMinVecMatAdd shape mismatch")
	}
	negInf := -Inf
	for k, xk := range x {
		if xk == negInf {
			continue // min(-Inf, a) = -Inf never improves a max
		}
		arow := A.Row(k)
		yy := y[:len(arow)]
		for j, a := range arow {
			v := a
			if xk < a {
				v = xk
			}
			if v > yy[j] {
				yy[j] = v
			}
		}
	}
}

// MaxMinMatVecAdd computes y = y ⊕ (A ⊗ x) over the bottleneck
// semiring for a column vector x (len = A.Cols) and y (len = A.Rows),
// mirroring MinPlusMatVecAdd's zero fast paths: an all--Inf x returns
// immediately, and -Inf entries of A skip their candidate.
func MaxMinMatVecAdd(y []float64, A Mat, x []float64) {
	if len(x) != A.Cols || len(y) != A.Rows {
		panic("semiring: MaxMinMatVecAdd shape mismatch")
	}
	negInf := -Inf
	finite := false
	for _, v := range x {
		if v != negInf {
			finite = true
			break
		}
	}
	if !finite {
		return
	}
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)
		best := y[i]
		for k, a := range arow {
			if a == negInf {
				continue // -Inf ⊗ x[k] = -Inf never improves y[i]
			}
			v := x[k]
			if a < v {
				v = a
			}
			if v > best {
				best = v
			}
		}
		y[i] = best
	}
}

// MaxMinFloydWarshall computes the max-min closure in place.
func MaxMinFloydWarshall(A Mat) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: MaxMinFloydWarshall requires a square matrix")
	}
	negInf := -Inf
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == negInf {
				continue
			}
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				v := bkj
				if aik < bkj {
					v = aik
				}
				if v > irow[j] {
					irow[j] = v
				}
			}
		}
	}
}

// MaxMinFloydWarshallPaths is MaxMinFloydWarshall with next-hop tracking.
func MaxMinFloydWarshallPaths(A Mat, next IntMat) {
	n := A.Rows
	if A.Cols != n || next.Rows != n || next.Cols != n {
		panic("semiring: MaxMinFloydWarshallPaths shape mismatch")
	}
	negInf := -Inf
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == negInf {
				continue
			}
			nrow := next.Row(i)
			hop := nrow[k]
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				v := bkj
				if aik < bkj {
					v = aik
				}
				if v > irow[j] {
					irow[j] = v
					nrow[j] = hop
				}
			}
		}
	}
}
