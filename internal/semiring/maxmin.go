package semiring

// Max-min ("bottleneck") semiring kernels: ⊕ = max, ⊗ = min. Over this
// semiring the closure of a capacity matrix is the widest-path (maximum
// bottleneck) matrix: D[i][j] is the largest capacity c such that some
// i→j path uses only edges of capacity ≥ c.
//
// The additive identity ("no path") is -Inf and the multiplicative
// identity (empty path) is +Inf, so diagonals of capacity matrices are
// +Inf and non-edges are -Inf. The same in-place update arguments as the
// min-plus kernels hold with the order flipped: values only increase,
// every value is a real path bottleneck, and the closed diagonal block's
// +Inf diagonal makes the aliased row update a no-op.
//
// The paper frames Floyd-Warshall as Gaussian elimination over a
// semiring; these kernels plug into the identical supernodal engine
// (sparsity is a property of the pattern, not of the algebra), which is
// exactly the generality §2 and §7 of the paper argue for.

// MaxMinMulAdd computes C[i][j] = max(C[i][j], max_k min(A[i][k], B[k][j])).
func MaxMinMulAdd(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MaxMinMulAdd shape mismatch")
	}
	m := A.Cols
	negInf := -Inf
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == negInf {
				continue // min(-Inf, b) = -Inf never improves a max
			}
			brow := B.Row(k)
			cr := crow[:len(brow)]
			for j, b := range brow {
				v := b
				if aik < b {
					v = aik
				}
				if v > cr[j] {
					cr[j] = v
				}
			}
		}
	}
}

// MaxMinMulAddPaths is MaxMinMulAdd with next-hop maintenance (see
// MinPlusMulAddPaths).
func MaxMinMulAddPaths(C, A, B Mat, nextC, nextA IntMat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MaxMinMulAddPaths shape mismatch")
	}
	m := A.Cols
	negInf := -Inf
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		ncrow := nextC.Row(i)
		narow := nextA.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == negInf {
				continue
			}
			hop := narow[k]
			brow := B.Row(k)
			cr := crow[:len(brow)]
			nr := ncrow[:len(brow)]
			for j, b := range brow {
				v := b
				if aik < b {
					v = aik
				}
				if v > cr[j] {
					cr[j] = v
					nr[j] = hop
				}
			}
		}
	}
}

// MaxMinFloydWarshall computes the max-min closure in place.
func MaxMinFloydWarshall(A Mat) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: MaxMinFloydWarshall requires a square matrix")
	}
	negInf := -Inf
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == negInf {
				continue
			}
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				v := bkj
				if aik < bkj {
					v = aik
				}
				if v > irow[j] {
					irow[j] = v
				}
			}
		}
	}
}

// MaxMinFloydWarshallPaths is MaxMinFloydWarshall with next-hop tracking.
func MaxMinFloydWarshallPaths(A Mat, next IntMat) {
	n := A.Rows
	if A.Cols != n || next.Rows != n || next.Cols != n {
		panic("semiring: MaxMinFloydWarshallPaths shape mismatch")
	}
	negInf := -Inf
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == negInf {
				continue
			}
			nrow := next.Row(i)
			hop := nrow[k]
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				v := bkj
				if aik < bkj {
					v = aik
				}
				if v > irow[j] {
					irow[j] = v
					nrow[j] = hop
				}
			}
		}
	}
}
