package semiring

import "repro/internal/par"

// ParallelBlockedFloydWarshall runs the blocked Floyd-Warshall algorithm
// (Algorithm 2) in place on the n×n matrix A with block size b, using up
// to the given number of threads. In the k-th iteration the diagonal
// update is sequential (it is the critical path), the panel updates run
// in parallel across blocks, and the min-plus outer product runs in
// parallel across all (i,j) block pairs — the O(n²) concurrency of the
// paper's Table 2.
func ParallelBlockedFloydWarshall(A Mat, b, threads int) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: ParallelBlockedFloydWarshall requires a square matrix")
	}
	if b <= 0 {
		panic("semiring: block size must be positive")
	}
	threads = par.DefaultThreads(threads)
	if threads == 1 {
		BlockedFloydWarshall(A, b)
		return
	}
	nb := (n + b - 1) / b
	blk := func(i int) (int, int) {
		lo := i * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		return lo, hi - lo
	}
	parallelBlockedFW(A, IntMat{}, false, threads, nb, blk, MinPlusKernels)
}

// ParallelBlockedFloydWarshallPaths is ParallelBlockedFloydWarshall with
// next-hop maintenance (see FloydWarshallPaths).
func ParallelBlockedFloydWarshallPaths(A Mat, next IntMat, b, threads int) {
	n := A.Rows
	if A.Cols != n || next.Rows != n || next.Cols != n {
		panic("semiring: ParallelBlockedFloydWarshallPaths shape mismatch")
	}
	threads = par.DefaultThreads(threads)
	nb := (n + b - 1) / b
	blk := func(i int) (int, int) {
		lo := i * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		return lo, hi - lo
	}
	parallelBlockedFW(A, next, true, threads, nb, blk, MinPlusKernels)
}

func parallelBlockedFW(A Mat, next IntMat, track bool, threads, nb int, blk func(int) (int, int), K *Kernels) {
	mul := func(C, X, Y Mat, nc, nx IntMat) {
		if track {
			K.MulAddPaths(C, X, Y, nc, nx)
		} else {
			K.MulAdd(C, X, Y)
		}
	}
	iview := func(i0, j0, r, c int) IntMat {
		if !track {
			return IntMat{}
		}
		return next.View(i0, j0, r, c)
	}
	for k := 0; k < nb; k++ {
		k0, kb := blk(k)
		Akk := A.View(k0, k0, kb, kb)
		if track {
			K.FWPaths(Akk, next.View(k0, k0, kb, kb))
		} else {
			K.FW(Akk)
		}

		// Panel updates: 2(nb-1) independent tasks. The in-place form
		// P = P ⊕ D⊗P is safe because D is closed with a zero diagonal:
		// finite values only ever decrease and always correspond to real
		// path lengths, and the true minimum is reached regardless of
		// sweep order (see core package for the full argument).
		par.For(2*nb, threads, 1, func(t int) {
			j := t / 2
			if j == k {
				return
			}
			j0, jb := blk(j)
			if t%2 == 0 {
				// Row panel: improvement via kk uses the first hop of
				// the (k-row → kk) path, which lives in the diagonal
				// region of next.
				mul(A.View(k0, j0, kb, jb), Akk, A.View(k0, j0, kb, jb),
					iview(k0, j0, kb, jb), iview(k0, k0, kb, kb))
			} else {
				mul(A.View(j0, k0, jb, kb), A.View(j0, k0, jb, kb), Akk,
					iview(j0, k0, jb, kb), iview(j0, k0, jb, kb))
			}
		})

		// Outer product: (nb-1)² independent block updates.
		par.For(nb*nb, threads, 0, func(t int) {
			i, j := t/nb, t%nb
			if i == k || j == k {
				return
			}
			i0, ib := blk(i)
			j0, jb := blk(j)
			mul(A.View(i0, j0, ib, jb), A.View(i0, k0, ib, kb), A.View(k0, j0, kb, jb),
				iview(i0, j0, ib, jb), iview(i0, k0, ib, kb))
		})
	}
}
