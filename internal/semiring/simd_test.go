package semiring

import (
	"math/rand"
	"testing"
)

// TestVectorKernelMatchesScalar isolates the SIMD tile kernel: the same
// dense multiply with the vector path forced off must produce bitwise
// identical results, across shapes that exercise the 8-lane body, the
// scalar j tail, and the odd-k remainder.
func TestVectorKernelMatchesScalar(t *testing.T) {
	if !HasVectorKernel() {
		t.Skip("no vector kernel on this machine")
	}
	prevTuning := CurrentGemmTuning()
	defer SetGemmTuning(prevTuning)
	// Force the dense packed path for every call.
	SetGemmTuning(GemmTuning{KTile: 64, JTile: 512, GemmSmall: 768,
		DenseMinFinite: 0, DenseMinOps: 1, ParMinRows: 1 << 30, ParMinOps: 1 << 62})
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{4, 64, 512}, {9, 65, 77}, {16, 7, 16}, {33, 129, 523}, {5, 2, 19}}
	for _, s := range shapes {
		for _, infFrac := range []float64{0, 0.5, 1.0} {
			A := randomMat(rng, s[0], s[1], infFrac)
			B := randomMat(rng, s[1], s[2], infFrac)
			C := randomMat(rng, s[0], s[2], 0.5)
			wantC := C.Clone()
			useAVX2 = false
			MinPlusMulAdd(wantC, A, B)
			useAVX2 = true
			MinPlusMulAdd(C, A, B)
			if !C.Equal(wantC) {
				t.Fatalf("vector and scalar dense kernels disagree for shape %v infFrac %.1f", s, infFrac)
			}
		}
	}
}
