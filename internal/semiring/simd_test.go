package semiring

import (
	"math/rand"
	"testing"
)

// forceDenseTuning makes every call take the dense packed path so the
// tile kernels (not the dispatch) are what's under test.
func forceDenseTuning(t *testing.T) {
	t.Helper()
	prev := CurrentGemmTuning()
	t.Cleanup(func() { SetGemmTuning(prev) })
	SetGemmTuning(GemmTuning{KTile: 64, JTile: 512, GemmSmall: 768,
		DenseMinFinite: 0, DenseMinOps: 1, ParMinRows: 1 << 30, ParMinOps: 1 << 62})
}

// simdShapes exercise the 32- and 16-lane bodies, the masked ≤8-lane
// tails (cols mod 8 and mod 16 ≠ 0), narrow tiles below the vector
// cutoff, and odd k counts.
var simdShapes = [][3]int{
	{4, 64, 512}, {9, 65, 77}, {16, 7, 16}, {33, 129, 523},
	{5, 2, 19}, {8, 31, 40}, {12, 16, 9}, {7, 5, 100},
}

// TestVectorKernelMatchesScalar isolates the SIMD tile kernels: the
// same dense multiply at every ISA level the hardware supports must
// produce bitwise identical results — values for min-plus/max-min,
// values AND hops for the index-carrying Paths variants.
func TestVectorKernelMatchesScalar(t *testing.T) {
	if !HasVectorKernel() {
		t.Skip("no vector kernel on this machine")
	}
	forceDenseTuning(t)
	prevISA := VectorISA()
	defer SetMaxVectorISA(prevISA)
	levels := []string{"avx2", "avx512"}
	rng := rand.New(rand.NewSource(42))
	for _, s := range simdShapes {
		for _, infFrac := range []float64{0, 0.5, 1.0} {
			A := randomMat(rng, s[0], s[1], infFrac)
			B := randomMat(rng, s[1], s[2], infFrac)
			C := randomMat(rng, s[0], s[2], 0.5)
			nextA := randomHops(rng, s[0], s[1])
			nextB := randomHops(rng, s[0], s[2])

			SetMaxVectorISA("scalar")
			wantC := C.Clone()
			MinPlusMulAdd(wantC, A, B)
			wantMM := C.Clone()
			MaxMinMulAdd(wantMM, negate(A), negate(B))
			wantP := C.Clone()
			wantPN := cloneHops(nextB)
			MinPlusMulAddPaths(wantP, A, B, wantPN, nextA)
			wantMP := C.Clone()
			wantMPN := cloneHops(nextB)
			MaxMinMulAddPaths(wantMP, negate(A), negate(B), wantMPN, nextA)

			for _, level := range levels {
				if SetMaxVectorISA(level); VectorISA() != level {
					continue // hardware tops out below this level
				}
				gotC := C.Clone()
				MinPlusMulAdd(gotC, A, B)
				if !gotC.Equal(wantC) {
					t.Fatalf("%s min-plus differs from scalar for shape %v infFrac %.1f", level, s, infFrac)
				}
				gotMM := C.Clone()
				MaxMinMulAdd(gotMM, negate(A), negate(B))
				if !gotMM.Equal(wantMM) {
					t.Fatalf("%s max-min differs from scalar for shape %v infFrac %.1f", level, s, infFrac)
				}
				gotP := C.Clone()
				gotPN := cloneHops(nextB)
				MinPlusMulAddPaths(gotP, A, B, gotPN, nextA)
				if !gotP.Equal(wantP) || !hopsEqual(gotPN, wantPN) {
					t.Fatalf("%s min-plus paths differs from scalar for shape %v infFrac %.1f", level, s, infFrac)
				}
				gotMP := C.Clone()
				gotMPN := cloneHops(nextB)
				MaxMinMulAddPaths(gotMP, negate(A), negate(B), gotMPN, nextA)
				if !gotMP.Equal(wantMP) || !hopsEqual(gotMPN, wantMPN) {
					t.Fatalf("%s max-min paths differs from scalar for shape %v infFrac %.1f", level, s, infFrac)
				}
			}
			SetMaxVectorISA(prevISA)
		}
	}
}

// negate maps a min-plus operand (finite or +Inf) to a max-min operand
// (finite or -Inf) so the same random matrices exercise both algebras.
func negate(A Mat) Mat {
	B := A.Clone()
	for i := range B.Data {
		B.Data[i] = -B.Data[i]
	}
	return B
}

func randomHops(rng *rand.Rand, rows, cols int) IntMat {
	m := NewIntMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = int32(rng.Intn(64))
	}
	return m
}

func cloneHops(m IntMat) IntMat {
	c := NewIntMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

func hopsEqual(a, b IntMat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}
