package semiring

// Register-blocked micro-kernels of the dense GEMM path. Each function
// sweeps every row of A over one packed B tile (pk: kh×jh, row-major,
// stride jh, packed by packTile from B at (k0, j0)) and updates the
// matching C columns [j0, j0+jh).
//
// The blocking is 4 C rows per pass with a 2-way k-unroll: eight A
// scalars live in registers, two packed B rows stream through the inner
// loop, and each output element first takes a branchless min across the
// k pair before the conditional store. Relative to the streaming kernel
// this amortizes every B-row load over four C rows and halves the store
// branches per relaxation; the conditional store (rather than an
// unconditional min) keeps the common path load-only, which measures
// consistently faster than always-store variants because stores are
// rare once C tightens. Wider row blocks (8) and deeper k-unrolls (4)
// both measured slower on the tested hosts — more live registers than
// the allocator can keep, for min-plus's 2-op bodies.
//
// k advances in ascending order everywhere (k-pair order inside the
// unroll, tile order outside), and improvements are strict (<, or > for
// max-min), so the path-tracking variants record exactly the hop the
// canonical k-ascending reference records: the first k achieving the
// minimal value wins, ties never overwrite.

// minPlusTile sweeps C[0:r, j0:j0+jh] ⊕= A[0:r, k0:k0+kh] ⊗ pk.
// On amd64 with AVX2 the sweep runs in the vector kernel (simd_amd64.go)
// instead — same ascending-k order, same results.
func minPlusTile(C, A Mat, pk []float64, k0, kh, j0, jh int) {
	if minPlusTileVec(C, A, pk, k0, kh, j0, jh) {
		return
	}
	r := A.Rows
	i := 0
	for ; i+4 <= r; i += 4 {
		a0 := A.Row(i)[k0 : k0+kh]
		a1 := A.Row(i + 1)[k0 : k0+kh]
		a2 := A.Row(i + 2)[k0 : k0+kh]
		a3 := A.Row(i + 3)[k0 : k0+kh]
		c0 := C.Row(i)[j0 : j0+jh]
		c1 := C.Row(i + 1)[j0 : j0+jh]
		c2 := C.Row(i + 2)[j0 : j0+jh]
		c3 := C.Row(i + 3)[j0 : j0+jh]
		k := 0
		for ; k+2 <= kh; k += 2 {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			y0, y1, y2, y3 := a0[k+1], a1[k+1], a2[k+1], a3[k+1]
			// All-Inf k pair: no candidate can improve any of the four C
			// rows, so skip the 8·jh inner ops. Eight compares against a
			// dense tile's 8·jh fused ops is noise; against a mostly-Inf A
			// it restores the streaming kernel's skip.
			if x0 == Inf && x1 == Inf && x2 == Inf && x3 == Inf &&
				y0 == Inf && y1 == Inf && y2 == Inf && y3 == Inf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			bq := pk[(k+1)*jh : (k+1)*jh+jh : (k+1)*jh+jh]
			for j, bv := range bp {
				bw := bq[j]
				if v := min(x0+bv, y0+bw); v < c0[j] {
					c0[j] = v
				}
				if v := min(x1+bv, y1+bw); v < c1[j] {
					c1[j] = v
				}
				if v := min(x2+bv, y2+bw); v < c2[j] {
					c2[j] = v
				}
				if v := min(x3+bv, y3+bw); v < c3[j] {
					c3[j] = v
				}
			}
		}
		for ; k < kh; k++ {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			if x0 == Inf && x1 == Inf && x2 == Inf && x3 == Inf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := x0 + bv; v < c0[j] {
					c0[j] = v
				}
				if v := x1 + bv; v < c1[j] {
					c1[j] = v
				}
				if v := x2 + bv; v < c2[j] {
					c2[j] = v
				}
				if v := x3 + bv; v < c3[j] {
					c3[j] = v
				}
			}
		}
	}
	// Remainder rows: stream over the packed tile, keeping the Inf skip.
	for ; i < r; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		for k, a := range arow {
			if a == Inf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := a + bv; v < crow[j] {
					crow[j] = v
				}
			}
		}
	}
}

// minPlusPathsTile is minPlusTile with next-hop maintenance: an
// improvement via intermediate k0+k records nextA[i][k0+k]. On amd64
// with AVX-512 the sweep runs in the masked index-carrying vector
// kernel instead (blend-select on the compare mask) — same ascending-k
// strict-improvement order, so hops are bitwise identical.
func minPlusPathsTile(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) {
	if minPlusPathsTileVec(C, A, nextC, nextA, pk, k0, kh, j0, jh) {
		return
	}
	r := A.Rows
	i := 0
	for ; i+4 <= r; i += 4 {
		a0 := A.Row(i)[k0 : k0+kh]
		a1 := A.Row(i + 1)[k0 : k0+kh]
		a2 := A.Row(i + 2)[k0 : k0+kh]
		a3 := A.Row(i + 3)[k0 : k0+kh]
		na0 := nextA.Row(i)[k0 : k0+kh]
		na1 := nextA.Row(i + 1)[k0 : k0+kh]
		na2 := nextA.Row(i + 2)[k0 : k0+kh]
		na3 := nextA.Row(i + 3)[k0 : k0+kh]
		c0 := C.Row(i)[j0 : j0+jh]
		c1 := C.Row(i + 1)[j0 : j0+jh]
		c2 := C.Row(i + 2)[j0 : j0+jh]
		c3 := C.Row(i + 3)[j0 : j0+jh]
		n0 := nextC.Row(i)[j0 : j0+jh]
		n1 := nextC.Row(i + 1)[j0 : j0+jh]
		n2 := nextC.Row(i + 2)[j0 : j0+jh]
		n3 := nextC.Row(i + 3)[j0 : j0+jh]
		k := 0
		for ; k+2 <= kh; k += 2 {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			y0, y1, y2, y3 := a0[k+1], a1[k+1], a2[k+1], a3[k+1]
			if x0 == Inf && x1 == Inf && x2 == Inf && x3 == Inf &&
				y0 == Inf && y1 == Inf && y2 == Inf && y3 == Inf {
				continue // all-Inf k pair: nothing can improve, no hop to record
			}
			h0, h1, h2, h3 := na0[k], na1[k], na2[k], na3[k]
			g0, g1, g2, g3 := na0[k+1], na1[k+1], na2[k+1], na3[k+1]
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			bq := pk[(k+1)*jh : (k+1)*jh+jh : (k+1)*jh+jh]
			for j, bv := range bp {
				bw := bq[j]
				// On a tie inside the k pair the earlier k's hop wins,
				// matching the canonical k-ascending order.
				v, h := x0+bv, h0
				if w := y0 + bw; w < v {
					v, h = w, g0
				}
				if v < c0[j] {
					c0[j], n0[j] = v, h
				}
				v, h = x1+bv, h1
				if w := y1 + bw; w < v {
					v, h = w, g1
				}
				if v < c1[j] {
					c1[j], n1[j] = v, h
				}
				v, h = x2+bv, h2
				if w := y2 + bw; w < v {
					v, h = w, g2
				}
				if v < c2[j] {
					c2[j], n2[j] = v, h
				}
				v, h = x3+bv, h3
				if w := y3 + bw; w < v {
					v, h = w, g3
				}
				if v < c3[j] {
					c3[j], n3[j] = v, h
				}
			}
		}
		for ; k < kh; k++ {
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for q := 0; q < 4; q++ {
				a := A.Row(i + q)[k0+k]
				if a == Inf {
					continue
				}
				hop := nextA.Row(i + q)[k0+k]
				crow := C.Row(i + q)[j0 : j0+jh]
				nrow := nextC.Row(i + q)[j0 : j0+jh]
				for j, bv := range bp {
					if v := a + bv; v < crow[j] {
						crow[j], nrow[j] = v, hop
					}
				}
			}
		}
	}
	for ; i < r; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		narow := nextA.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		nrow := nextC.Row(i)[j0 : j0+jh]
		for k, a := range arow {
			if a == Inf {
				continue
			}
			hop := narow[k]
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := a + bv; v < crow[j] {
					crow[j], nrow[j] = v, hop
				}
			}
		}
	}
}

// maxMinTile is minPlusTile over the bottleneck semiring:
// C[i][j] = max(C[i][j], max_k min(A[i][k], pk[k][j])).
// On amd64 with AVX2/AVX-512 the sweep runs in the vector kernel.
func maxMinTile(C, A Mat, pk []float64, k0, kh, j0, jh int) {
	if maxMinTileVec(C, A, pk, k0, kh, j0, jh) {
		return
	}
	r := A.Rows
	negInf := -Inf
	i := 0
	for ; i+4 <= r; i += 4 {
		a0 := A.Row(i)[k0 : k0+kh]
		a1 := A.Row(i + 1)[k0 : k0+kh]
		a2 := A.Row(i + 2)[k0 : k0+kh]
		a3 := A.Row(i + 3)[k0 : k0+kh]
		c0 := C.Row(i)[j0 : j0+jh]
		c1 := C.Row(i + 1)[j0 : j0+jh]
		c2 := C.Row(i + 2)[j0 : j0+jh]
		c3 := C.Row(i + 3)[j0 : j0+jh]
		k := 0
		for ; k+2 <= kh; k += 2 {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			y0, y1, y2, y3 := a0[k+1], a1[k+1], a2[k+1], a3[k+1]
			// All--Inf k pair: min(-Inf, b) = -Inf never improves a max.
			// Mirrors the min-plus quad skip (same audit).
			if x0 == negInf && x1 == negInf && x2 == negInf && x3 == negInf &&
				y0 == negInf && y1 == negInf && y2 == negInf && y3 == negInf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			bq := pk[(k+1)*jh : (k+1)*jh+jh : (k+1)*jh+jh]
			for j, bv := range bp {
				bw := bq[j]
				if v := max(min(x0, bv), min(y0, bw)); v > c0[j] {
					c0[j] = v
				}
				if v := max(min(x1, bv), min(y1, bw)); v > c1[j] {
					c1[j] = v
				}
				if v := max(min(x2, bv), min(y2, bw)); v > c2[j] {
					c2[j] = v
				}
				if v := max(min(x3, bv), min(y3, bw)); v > c3[j] {
					c3[j] = v
				}
			}
		}
		for ; k < kh; k++ {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			if x0 == negInf && x1 == negInf && x2 == negInf && x3 == negInf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := min(x0, bv); v > c0[j] {
					c0[j] = v
				}
				if v := min(x1, bv); v > c1[j] {
					c1[j] = v
				}
				if v := min(x2, bv); v > c2[j] {
					c2[j] = v
				}
				if v := min(x3, bv); v > c3[j] {
					c3[j] = v
				}
			}
		}
	}
	for ; i < r; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		for k, a := range arow {
			if a == negInf {
				continue
			}
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := min(a, bv); v > crow[j] {
					crow[j] = v
				}
			}
		}
	}
}

// maxMinPathsTile is maxMinTile with next-hop maintenance (vectorized
// on AVX-512, same hop tie-break as the scalar sweep).
func maxMinPathsTile(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) {
	if maxMinPathsTileVec(C, A, nextC, nextA, pk, k0, kh, j0, jh) {
		return
	}
	r := A.Rows
	negInf := -Inf
	i := 0
	for ; i+4 <= r; i += 4 {
		a0 := A.Row(i)[k0 : k0+kh]
		a1 := A.Row(i + 1)[k0 : k0+kh]
		a2 := A.Row(i + 2)[k0 : k0+kh]
		a3 := A.Row(i + 3)[k0 : k0+kh]
		na0 := nextA.Row(i)[k0 : k0+kh]
		na1 := nextA.Row(i + 1)[k0 : k0+kh]
		na2 := nextA.Row(i + 2)[k0 : k0+kh]
		na3 := nextA.Row(i + 3)[k0 : k0+kh]
		c0 := C.Row(i)[j0 : j0+jh]
		c1 := C.Row(i + 1)[j0 : j0+jh]
		c2 := C.Row(i + 2)[j0 : j0+jh]
		c3 := C.Row(i + 3)[j0 : j0+jh]
		n0 := nextC.Row(i)[j0 : j0+jh]
		n1 := nextC.Row(i + 1)[j0 : j0+jh]
		n2 := nextC.Row(i + 2)[j0 : j0+jh]
		n3 := nextC.Row(i + 3)[j0 : j0+jh]
		k := 0
		for ; k+2 <= kh; k += 2 {
			x0, x1, x2, x3 := a0[k], a1[k], a2[k], a3[k]
			y0, y1, y2, y3 := a0[k+1], a1[k+1], a2[k+1], a3[k+1]
			if x0 == negInf && x1 == negInf && x2 == negInf && x3 == negInf &&
				y0 == negInf && y1 == negInf && y2 == negInf && y3 == negInf {
				continue
			}
			h0, h1, h2, h3 := na0[k], na1[k], na2[k], na3[k]
			g0, g1, g2, g3 := na0[k+1], na1[k+1], na2[k+1], na3[k+1]
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			bq := pk[(k+1)*jh : (k+1)*jh+jh : (k+1)*jh+jh]
			for j, bv := range bp {
				bw := bq[j]
				v, h := min(x0, bv), h0
				if w := min(y0, bw); w > v {
					v, h = w, g0
				}
				if v > c0[j] {
					c0[j], n0[j] = v, h
				}
				v, h = min(x1, bv), h1
				if w := min(y1, bw); w > v {
					v, h = w, g1
				}
				if v > c1[j] {
					c1[j], n1[j] = v, h
				}
				v, h = min(x2, bv), h2
				if w := min(y2, bw); w > v {
					v, h = w, g2
				}
				if v > c2[j] {
					c2[j], n2[j] = v, h
				}
				v, h = min(x3, bv), h3
				if w := min(y3, bw); w > v {
					v, h = w, g3
				}
				if v > c3[j] {
					c3[j], n3[j] = v, h
				}
			}
		}
		for ; k < kh; k++ {
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for q := 0; q < 4; q++ {
				a := A.Row(i + q)[k0+k]
				if a == negInf {
					continue
				}
				hop := nextA.Row(i + q)[k0+k]
				crow := C.Row(i + q)[j0 : j0+jh]
				nrow := nextC.Row(i + q)[j0 : j0+jh]
				for j, bv := range bp {
					if v := min(a, bv); v > crow[j] {
						crow[j], nrow[j] = v, hop
					}
				}
			}
		}
	}
	for ; i < r; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		narow := nextA.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		nrow := nextC.Row(i)[j0 : j0+jh]
		for k, a := range arow {
			if a == negInf {
				continue
			}
			hop := narow[k]
			bp := pk[k*jh : k*jh+jh : k*jh+jh]
			for j, bv := range bp {
				if v := min(a, bv); v > crow[j] {
					crow[j], nrow[j] = v, hop
				}
			}
		}
	}
}
