package semiring

// Path-tracking variants of the min-plus kernels. Alongside the distance
// matrix they maintain a next-hop matrix: Next[i][j] is the neighbor of i
// that begins a shortest i→j path (or -1 when no path is known). The
// update rule mirrors the distance recurrence: when Dist[i][j] improves
// via intermediate k, the first hop of the new path is the first hop of
// the i→k path, so Next[i][j] ← Next[i][k].
//
// Following next-hops reconstructs paths without recursion. With strictly
// positive weights each hop strictly decreases the remaining distance, so
// extraction terminates; extraction guards against the pathological
// zero-weight-cycle case with a hop budget.

import (
	"fmt"

	"repro/internal/par"
)

// IntMat is a dense row-major int32 matrix view (see Mat).
type IntMat struct {
	Data   []int32
	Stride int
	Rows   int
	Cols   int
}

// NewIntMat allocates a Rows×Cols matrix initialized to -1 ("no hop").
func NewIntMat(rows, cols int) IntMat {
	m := IntMat{Data: make([]int32, rows*cols), Stride: cols, Rows: rows, Cols: cols}
	for i := range m.Data {
		m.Data[i] = -1
	}
	return m
}

// View returns the r×c sub-block at (i, j), aliasing m's storage.
func (m IntMat) View(i, j, r, c int) IntMat {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("semiring: IntMat view [%d:%d, %d:%d] out of range of %d×%d",
			i, i+r, j, j+c, m.Rows, m.Cols))
	}
	off := i*m.Stride + j
	end := off
	if r > 0 && c > 0 {
		end = off + (r-1)*m.Stride + c
	}
	return IntMat{Data: m.Data[off:end:end], Stride: m.Stride, Rows: r, Cols: c}
}

// At returns the element at (i, j).
func (m IntMat) At(i, j int) int32 { return m.Data[i*m.Stride+j] }

// Set stores v at (i, j).
func (m IntMat) Set(i, j int, v int32) { m.Data[i*m.Stride+j] = v }

// Row returns row i, aliasing m's storage.
func (m IntMat) Row(i int) []int32 {
	off := i * m.Stride
	return m.Data[off : off+m.Cols : off+m.Cols]
}

// FloydWarshallPaths is FloydWarshall with next-hop maintenance. A and
// next must be square with the same dimension; next is updated in place.
func FloydWarshallPaths(A Mat, next IntMat) {
	n := A.Rows
	if A.Cols != n || next.Rows != n || next.Cols != n {
		panic("semiring: FloydWarshallPaths shape mismatch")
	}
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == Inf {
				continue
			}
			nrow := next.Row(i)
			hop := nrow[k]
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				if v := aik + bkj; v < irow[j] {
					irow[j] = v
					nrow[j] = hop
				}
			}
		}
	}
}

// MinPlusMulAddPaths computes C = C ⊕ A⊗B while maintaining next-hops:
// when C[i][j] improves via intermediate k, nextC[i][j] ← nextA[i][k].
// nextC must be shaped like C and nextA like A. The same in-place
// aliasing rules as MinPlusMulAdd apply (C may alias A or B when the
// non-aliased operand is closed with a zero diagonal), and it shares
// the adaptive dense/stream dispatch and i-sharding of MinPlusMulAdd:
// every kernel path applies k in ascending order with strict
// improvement, so recorded hops match the canonical reference exactly.
func MinPlusMulAddPaths(C, A, B Mat, nextC, nextA IntMat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MinPlusMulAddPaths shape mismatch")
	}
	if nextC.Rows != C.Rows || nextC.Cols != C.Cols || nextA.Rows != A.Rows || nextA.Cols != A.Cols {
		panic("semiring: MinPlusMulAddPaths next-hop shape mismatch")
	}
	kernelStats.calls.Add(1)
	t := CurrentGemmTuning()
	dense := wantDense(t, A, C.Cols, Inf)
	if dense {
		kernelStats.dense.Add(1)
	} else {
		kernelStats.stream.Add(1)
	}
	run := func(C, A Mat, nc, na IntMat) {
		if dense {
			minPlusPathsDense(C, A, B, nc, na, t)
		} else {
			minPlusPathsStream(C, A, B, nc, na)
		}
	}
	if wantShard(t, C.Rows, A.Cols, C.Cols) &&
		!matOverlaps(C, A) && !matOverlaps(C, B) && !overlapsInt(nextC.Data, nextA.Data) {
		par.ForRanges(C.Rows, 0, t.ParMinRows, func(lo, hi int) {
			kernelStats.parShards.Add(1)
			run(C.View(lo, 0, hi-lo, C.Cols), A.View(lo, 0, hi-lo, A.Cols),
				nextC.View(lo, 0, hi-lo, nextC.Cols), nextA.View(lo, 0, hi-lo, nextA.Cols))
		})
		return
	}
	run(C, A, nextC, nextA)
}

// minPlusPathsDense is the packed register-blocked path with next-hop
// maintenance.
func minPlusPathsDense(C, A, B Mat, nextC, nextA IntMat, t GemmTuning) {
	kt, jt := t.KTile, t.JTile
	buf := getPackBuf(kt * jt)
	for k0 := 0; k0 < A.Cols; k0 += kt {
		kh := min(kt, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += jt {
			jh := min(jt, C.Cols-j0)
			packTile(buf, B, k0, kh, j0, jh)
			minPlusPathsTile(C, A, nextC, nextA, buf[:kh*jh], k0, kh, j0, jh)
		}
	}
	putPackBuf(buf)
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// minPlusPathsStream is the Inf-skip streaming path with next-hop
// maintenance.
func minPlusPathsStream(C, A, B Mat, nextC, nextA IntMat) {
	m := A.Cols
	var touched uint64
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		ncrow := nextC.Row(i)
		narow := nextA.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == Inf {
				continue
			}
			hop := narow[k]
			brow := B.Row(k)
			cr := crow[:len(brow)]
			nr := ncrow[:len(brow)]
			touched += uint64(len(brow))
			for j, b := range brow {
				if v := aik + b; v < cr[j] {
					cr[j] = v
					nr[j] = hop
				}
			}
		}
	}
	kernelStats.fusedOps.Add(touched)
}

// InitNextHops fills next for an initial distance matrix D (in the same
// index space): next[i][j] = j wherever a finite off-diagonal entry
// exists (a direct edge), and i on the diagonal.
func InitNextHops(D Mat, next IntMat) {
	for i := 0; i < D.Rows; i++ {
		drow := D.Row(i)
		nrow := next.Row(i)
		for j, v := range drow {
			switch {
			case i == j:
				nrow[j] = int32(i)
			case v != Inf:
				nrow[j] = int32(j)
			default:
				nrow[j] = -1
			}
		}
	}
}

// PermuteIntMat writes dst[i][j] = m[perm[i]][perm[j]], remapping stored
// vertex ids through idMap (idMap[old] = new); negative entries pass
// through unchanged. Used to permute next-hop matrices, whose VALUES are
// vertex ids and must be relabeled along with the axes.
func PermuteIntMat(dst, m IntMat, perm []int, idMap []int) {
	n := m.Rows
	if m.Cols != n || dst.Rows != n || dst.Cols != n || len(perm) != n {
		panic("semiring: PermuteIntMat shape mismatch")
	}
	for i := 0; i < n; i++ {
		drow := dst.Row(i)
		srow := m.Row(perm[i])
		for j := 0; j < n; j++ {
			v := srow[perm[j]]
			if v >= 0 {
				v = int32(idMap[v])
			}
			drow[j] = v
		}
	}
}
