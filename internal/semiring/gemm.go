package semiring

// This file implements the dense min-plus matrix product, the
// "SemiringGemm" kernel of the paper (§5.1.2). All three Floyd-Warshall
// variants (BlockedFw, SuperBfs, SuperFw) funnel their block updates
// through this kernel, so its throughput sets the machine balance of the
// whole FW family.
//
// The kernel computes C = C ⊕ (A ⊗ B), elementwise
//
//	C[i][j] = min(C[i][j], min_k A[i][k] + B[k][j]).
//
// It is an adaptive engine with two kernel families behind one dispatch:
//
//   - Stream: the i-k-j loop with an aik == Inf skip. For a fixed output
//     row C[i] it streams rows of B, pruning a whole B-row pass per Inf
//     entry of A. Distance operands are mostly Inf through the early
//     eliminations, so skipped passes beat any amount of blocking there.
//   - Dense: B tiles are packed into contiguous cache-aligned scratch
//     (pack.go) and a register-blocked micro-kernel (microkernel.go)
//     updates 4 C rows per pass with a 2-way k-unroll and branchless
//     min. Near-dense operands — late eliminations, root separators —
//     have nothing to skip, and amortizing B-row loads over four C rows
//     wins there instead.
//
// Dispatch samples A's density per call (each call is one panel/tile
// update of the supernodal solve) and compares against the autotunable
// GemmTuning thresholds. Large alias-free GEMMs additionally shard
// their i-range across workers, so one huge root-separator update no
// longer runs on a single core.
//
// In-place aliasing: C may alias A or B when the other operand is a
// closed block with a zero diagonal (the panel updates rely on this).
// The packed path snapshots B tiles before each i-sweep, so aliased
// calls read values between the original and final C — every one a real
// path length, by induction — and monotone relaxation still lands on
// exactly the single-pass fixpoint the streaming kernel computes. The
// i-shard path is the one place aliasing would race, so the dispatch
// detects overlap (pack.go) and falls back to the serial engine.

import "repro/internal/par"

// MinPlusMulAdd computes C = C ⊕ A ⊗ B over the tropical semiring.
// A is r×m, B is m×c. C may alias A or B under the rules above.
func MinPlusMulAdd(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MinPlusMulAdd shape mismatch")
	}
	minPlusAdaptive(C, A, B, true)
}

// MinPlusMulAddSerial is MinPlusMulAdd pinned to the calling goroutine:
// the adaptive dense/stream dispatch still applies, but the i-range is
// never sharded across workers. Callers that multiplex many logical
// actors onto goroutines (the dist simulation's ranks) use it to keep
// one GEMM from oversubscribing the scheduler.
func MinPlusMulAddSerial(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MinPlusMulAdd shape mismatch")
	}
	minPlusAdaptive(C, A, B, false)
}

func minPlusAdaptive(C, A, B Mat, allowShard bool) {
	kernelStats.calls.Add(1)
	t := CurrentGemmTuning()
	dense := wantDense(t, A, C.Cols, Inf)
	if dense {
		kernelStats.dense.Add(1)
	} else {
		kernelStats.stream.Add(1)
	}
	run := func(C, A Mat) {
		if dense {
			minPlusDense(C, A, B, t)
		} else {
			minPlusStream(C, A, B, t)
		}
	}
	if allowShard && wantShard(t, C.Rows, A.Cols, C.Cols) &&
		!matOverlaps(C, A) && !matOverlaps(C, B) {
		par.ForRanges(C.Rows, 0, t.ParMinRows, func(lo, hi int) {
			kernelStats.parShards.Add(1)
			run(C.View(lo, 0, hi-lo, C.Cols), A.View(lo, 0, hi-lo, A.Cols))
		})
		return
	}
	run(C, A)
}

// wantDense decides the dense/stream dispatch: the call must be big
// enough to amortize packing, and a strided sample of A must be at
// least DenseMinFinite finite.
func wantDense(t GemmTuning, A Mat, cols int, zero float64) bool {
	if A.Rows < 8 || A.Rows*A.Cols*cols < t.DenseMinOps {
		return false
	}
	return sampleFinite(A, zero) >= t.DenseMinFinite
}

// wantShard decides i-range sharding (the caller still vetoes aliased
// operands).
func wantShard(t GemmTuning, rows, m, cols int) bool {
	return rows >= 2*t.ParMinRows && rows*m*cols >= t.ParMinOps && par.DefaultThreads(0) > 1
}

// minPlusDense is the packed register-blocked path: pack each
// KTile×JTile tile of B once, then sweep all rows of A over it.
func minPlusDense(C, A, B Mat, t GemmTuning) {
	kt, jt := t.KTile, t.JTile
	buf := getPackBuf(kt * jt)
	for k0 := 0; k0 < A.Cols; k0 += kt {
		kh := min(kt, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += jt {
			jh := min(jt, C.Cols-j0)
			packTile(buf, B, k0, kh, j0, jh)
			minPlusTile(C, A, buf[:kh*jh], k0, kh, j0, jh)
		}
	}
	putPackBuf(buf)
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// minPlusStream is the Inf-skip streaming path, tiled over (k, j) when
// the operands exceed GemmSmall so B tiles stay cache-resident across
// the i-sweep.
func minPlusStream(C, A, B Mat, t GemmTuning) {
	if B.Cols <= t.GemmSmall && B.Rows <= t.GemmSmall {
		minPlusStreamDirect(C, A, B)
		return
	}
	for k0 := 0; k0 < A.Cols; k0 += t.KTile {
		kh := min(t.KTile, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += t.JTile {
			jh := min(t.JTile, C.Cols-j0)
			minPlusStreamDirect(C.View(0, j0, C.Rows, jh), A.View(0, k0, A.Rows, kh), B.View(k0, j0, kh, jh))
		}
	}
}

// minPlusStreamDirect is the untiled i-k-j kernel: the aik == Inf skip
// prunes whole B-row passes, and the rarely-taken store branch keeps
// the common path load-only.
func minPlusStreamDirect(C, A, B Mat) {
	m := A.Cols
	var touched uint64
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == Inf {
				continue // a ⊗ Inf = Inf never improves c
			}
			brow := B.Row(k)
			// Inner fused add-min. len(brow) == len(crow) by
			// construction; the explicit slice re-bound lets the
			// compiler eliminate bounds checks.
			cr := crow[:len(brow)]
			touched += uint64(len(brow))
			for j, b := range brow {
				if v := aik + b; v < cr[j] {
					cr[j] = v
				}
			}
		}
	}
	kernelStats.fusedOps.Add(touched)
}

// Reference-kernel tile sizes, frozen at the pre-adaptive values so
// benchmark baselines stay comparable across tuning changes.
const (
	refKTile     = 64
	refJTile     = 512
	refGemmSmall = 768
)

// MinPlusMulAddReference is the pre-adaptive seed kernel, byte-for-byte
// the old MinPlusMulAdd: the streaming loop with fixed (k, j) tiling
// and no dispatch, packing, sharding, or counters. Benchmarks use it as
// the baseline the adaptive engine is measured against; it is not on
// any production path.
func MinPlusMulAddReference(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MinPlusMulAddReference shape mismatch")
	}
	if B.Cols <= refGemmSmall && B.Rows <= refGemmSmall {
		minPlusReferenceDirect(C, A, B)
		return
	}
	for k0 := 0; k0 < A.Cols; k0 += refKTile {
		kh := min(refKTile, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += refJTile {
			jh := min(refJTile, C.Cols-j0)
			minPlusReferenceDirect(C.View(0, j0, C.Rows, jh), A.View(0, k0, A.Rows, kh), B.View(k0, j0, kh, jh))
		}
	}
}

// minPlusReferenceDirect is minPlusStreamDirect without the counter.
func minPlusReferenceDirect(C, A, B Mat) {
	m := A.Cols
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == Inf {
				continue
			}
			brow := B.Row(k)
			cr := crow[:len(brow)]
			for j, b := range brow {
				if v := aik + b; v < cr[j] {
					cr[j] = v
				}
			}
		}
	}
}

// MinPlusMul computes and returns A ⊗ B (allocating the result).
func MinPlusMul(A, B Mat) Mat {
	C := NewInfMat(A.Rows, B.Cols)
	MinPlusMulAdd(C, A, B)
	return C
}

// MinPlusVecMatAdd computes y = y ⊕ (x ⊗ A) for a row vector x (len =
// A.Rows) and y (len = A.Cols). Used by scalar (non-supernodal) fallbacks.
func MinPlusVecMatAdd(y, x []float64, A Mat) {
	if len(x) != A.Rows || len(y) != A.Cols {
		panic("semiring: MinPlusVecMatAdd shape mismatch")
	}
	for k, xk := range x {
		if xk == Inf {
			continue
		}
		arow := A.Row(k)
		yy := y[:len(arow)]
		for j, a := range arow {
			if v := xk + a; v < yy[j] {
				yy[j] = v
			}
		}
	}
}

// MinPlusMatVecAdd computes y = y ⊕ (A ⊗ x) for a column vector x (len =
// A.Cols) and y (len = A.Rows). Used by the factor's reverse sweeps.
func MinPlusMatVecAdd(y []float64, A Mat, x []float64) {
	if len(x) != A.Cols || len(y) != A.Rows {
		panic("semiring: MinPlusMatVecAdd shape mismatch")
	}
	// Zero fast path: an all-Inf x can improve nothing, and reverse
	// sweeps hit that constantly (ancestor panels above vertices with no
	// path to the query target).
	finite := false
	for _, v := range x {
		if v != Inf {
			finite = true
			break
		}
	}
	if !finite {
		return
	}
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)
		best := y[i]
		for k, a := range arow {
			if a == Inf {
				continue // Inf ⊗ x[k] = Inf never improves y[i]
			}
			if v := a + x[k]; v < best {
				best = v
			}
		}
		y[i] = best
	}
}

// EwiseMinInto computes dst = dst ⊕ src elementwise.
func EwiseMinInto(dst, src Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("semiring: EwiseMinInto shape mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		drow, srow := dst.Row(i), src.Row(i)
		for j, v := range srow {
			if v < drow[j] {
				drow[j] = v
			}
		}
	}
}
