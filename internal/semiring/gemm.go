package semiring

// This file implements the dense min-plus matrix product, the
// "SemiringGemm" kernel of the paper (§5.1.2). All three Floyd-Warshall
// variants (BlockedFw, SuperBfs, SuperFw) funnel their block updates
// through this kernel, so its throughput sets the machine balance of the
// whole FW family.
//
// The kernel computes C = C ⊕ (A ⊗ B), elementwise
//
//	C[i][j] = min(C[i][j], min_k A[i][k] + B[k][j]).
//
// The loop order is i-k-j: for a fixed output row C[i] we stream rows of B,
// so the inner loop is a contiguous fused add-min over two rows, which the
// Go compiler turns into branch-light straight-line code with bounds checks
// hoisted. For operands that exceed cache we tile over k and j.

// tile sizes for the cache-blocked path. kTile rows of B (kTile×jTile
// doubles) plus one C row segment stay resident in L1/L2.
const (
	kTile = 64
	jTile = 512
	// gemmSmall is the threshold (in Cols of B) below which the direct
	// untiled loop is used.
	gemmSmall = 768
)

// MinPlusMulAdd computes C = C ⊕ A ⊗ B over the tropical semiring.
// A is r×m, B is m×c, C is r×c. C must not alias A or B.
func MinPlusMulAdd(C, A, B Mat) {
	if A.Rows != C.Rows || B.Cols != C.Cols || A.Cols != B.Rows {
		panic("semiring: MinPlusMulAdd shape mismatch")
	}
	if B.Cols <= gemmSmall && B.Rows <= gemmSmall {
		minPlusDirect(C, A, B)
		return
	}
	// Tile over (k, j); i is streamed in full so each (k,j) tile of B is
	// reused across all rows of A.
	for k0 := 0; k0 < A.Cols; k0 += kTile {
		kh := min(kTile, A.Cols-k0)
		for j0 := 0; j0 < C.Cols; j0 += jTile {
			jh := min(jTile, C.Cols-j0)
			minPlusDirect(C.View(0, j0, C.Rows, jh), A.View(0, k0, A.Rows, kh), B.View(k0, j0, kh, jh))
		}
	}
}

// minPlusDirect is the untiled i-k-j kernel.
//
// The shape of the inner loop is deliberate: the aik == Inf skip prunes
// whole B-row passes (distance operands are mostly Inf through the early
// eliminations, and trailing panels stay sparse under good orderings),
// and the rarely-taken store branch keeps the common path load-only.
// A 2-way k-unroll that halves C-row traffic was measured 2.5× SLOWER on
// representative operands because it forfeits exactly that skip.
func minPlusDirect(C, A, B Mat) {
	m := A.Cols
	for i := 0; i < A.Rows; i++ {
		crow := C.Row(i)
		arow := A.Row(i)
		for k := 0; k < m; k++ {
			aik := arow[k]
			if aik == Inf {
				continue // a ⊗ Inf = Inf never improves c
			}
			brow := B.Row(k)
			// Inner fused add-min. len(brow) == len(crow) by
			// construction; the explicit slice re-bound lets the
			// compiler eliminate bounds checks.
			cr := crow[:len(brow)]
			for j, b := range brow {
				if v := aik + b; v < cr[j] {
					cr[j] = v
				}
			}
		}
	}
}

// MinPlusMul computes and returns A ⊗ B (allocating the result).
func MinPlusMul(A, B Mat) Mat {
	C := NewInfMat(A.Rows, B.Cols)
	MinPlusMulAdd(C, A, B)
	return C
}

// MinPlusVecMatAdd computes y = y ⊕ (x ⊗ A) for a row vector x (len =
// A.Rows) and y (len = A.Cols). Used by scalar (non-supernodal) fallbacks.
func MinPlusVecMatAdd(y, x []float64, A Mat) {
	if len(x) != A.Rows || len(y) != A.Cols {
		panic("semiring: MinPlusVecMatAdd shape mismatch")
	}
	for k, xk := range x {
		if xk == Inf {
			continue
		}
		arow := A.Row(k)
		yy := y[:len(arow)]
		for j, a := range arow {
			if v := xk + a; v < yy[j] {
				yy[j] = v
			}
		}
	}
}

// MinPlusMatVecAdd computes y = y ⊕ (A ⊗ x) for a column vector x (len =
// A.Cols) and y (len = A.Rows). Used by the factor's reverse sweeps.
func MinPlusMatVecAdd(y []float64, A Mat, x []float64) {
	if len(x) != A.Cols || len(y) != A.Rows {
		panic("semiring: MinPlusMatVecAdd shape mismatch")
	}
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)
		best := y[i]
		for k, a := range arow {
			if v := a + x[k]; v < best {
				best = v
			}
		}
		y[i] = best
	}
}

// EwiseMinInto computes dst = dst ⊕ src elementwise.
func EwiseMinInto(dst, src Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("semiring: EwiseMinInto shape mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		drow, srow := dst.Row(i), src.Row(i)
		for j, v := range srow {
			if v < drow[j] {
				drow[j] = v
			}
		}
	}
}
