package semiring

// Differential and fuzz coverage for the fused packed-panel pipeline:
// PackPanel + MulAddPacked must be BITWISE equal to the staged MulAdd
// path and to the naive triple loop, for every semiring variant
// (min-plus, max-min, and both index-carrying Paths forms), across
// packed-dense, pack-refused (stream-mode panel), and consumer-stream
// dispatch, including masked-tail widths (cols mod 8 and mod 16 ≠ 0).
// The suite runs under -race in `make gemm-smoke`.

import (
	"math/rand"
	"testing"
	"time"
)

// fusedTunings force each fused dispatch decision in turn.
func fusedTunings() map[string]GemmTuning {
	base := DefaultGemmTuning()
	base.ParMinRows, base.ParMinOps = 1<<30, 1<<62 // keep staged reference serial

	dense := base
	dense.FusedMinFinite, dense.DenseMinFinite, dense.DenseMinOps = 0, 0, 1
	packRefused := base
	packRefused.FusedMinFinite = 2 // unreachable: panel stays in stream mode
	packRefused.DenseMinFinite, packRefused.DenseMinOps = 0, 1
	consumerStream := base
	consumerStream.FusedMinFinite = 0
	consumerStream.DenseMinFinite = 2 // packed, but every consumer streams
	tiny := dense
	tiny.KTile, tiny.JTile = 5, 9 // odd tiles: k-unroll and j remainders
	return map[string]GemmTuning{
		"pack-dense": dense, "pack-refused": packRefused,
		"consumer-stream": consumerStream, "tiny-tiles": tiny,
	}
}

// fusedShapes stress the vector kernels' masked tails (cols 77, 40, 9,
// 19 are ≢ 0 mod 8 and mod 16) alongside lane-exact widths.
var fusedShapes = [][3]int{
	{4, 64, 512}, {9, 65, 77}, {16, 7, 16}, {12, 16, 9},
	{8, 31, 40}, {5, 2, 19}, {33, 40, 96}, {1, 1, 1},
}

// TestFusedMatchesStagedAndNaive holds the tentpole equality: the fused
// pipeline (pack once, sweep many) is bitwise identical to the staged
// per-call path and the naive reference — values for min-plus/max-min,
// values AND hops for the Paths variants. Each panel is consumed twice
// to exercise the reuse path, not just first use.
func TestFusedMatchesStagedAndNaive(t *testing.T) {
	for name, tn := range fusedTunings() {
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(31))
			for _, s := range fusedShapes {
				for _, d := range []float64{0, 0.3, 1.0} {
					A := diffMat(rng, s[0], s[1], d, Inf)
					B := diffMat(rng, s[1], s[2], d, Inf)
					C := diffMat(rng, s[0], s[2], 0.5, Inf)
					C2 := diffMat(rng, s[0], s[2], 0.5, Inf)
					nextA := diffHops(rng, s[0], s[1])
					nextC0 := diffHops(rng, s[0], s[2])

					// min-plus
					naive := C.Clone()
					naiveMinPlus(naive, A, B)
					staged := C.Clone()
					MinPlusMulAdd(staged, A, B)
					P := PackPanel(B, Inf)
					fused, fused2 := C.Clone(), C2.Clone()
					MinPlusMulAddPacked(fused, A, P)
					MinPlusMulAddPacked(fused2, A, P) // reuse
					if !fused.Equal(naive) || !fused.Equal(staged) {
						t.Fatalf("min-plus fused differs (%v, d=%.1f)", s, d)
					}
					stagedRef := C2.Clone()
					MinPlusMulAdd(stagedRef, A, B)
					if !fused2.Equal(stagedRef) {
						t.Fatalf("min-plus fused reuse differs (%v, d=%.1f)", s, d)
					}

					// min-plus paths
					wantC, wantN := C.Clone(), cloneIntMat(nextC0)
					naiveMinPlusPaths(wantC, A, B, wantN, nextA)
					gotC, gotN := C.Clone(), cloneIntMat(nextC0)
					MinPlusMulAddPathsPacked(gotC, A, P, gotN, nextA)
					if !gotC.Equal(wantC) || !intMatEqual(gotN, wantN) {
						t.Fatalf("min-plus paths fused differs (%v, d=%.1f)", s, d)
					}
					P.Release()

					// max-min (negated operands map Inf → -Inf)
					nA, nB, nC := negate(A), negate(B), negate(C)
					naiveMM := nC.Clone()
					naiveMaxMin(naiveMM, nA, nB)
					PM := PackPanel(nB, -Inf)
					fusedMM := nC.Clone()
					MaxMinMulAddPacked(fusedMM, nA, PM)
					if !fusedMM.Equal(naiveMM) {
						t.Fatalf("max-min fused differs (%v, d=%.1f)", s, d)
					}

					// max-min paths
					wantMC, wantMN := nC.Clone(), cloneIntMat(nextC0)
					naiveMaxMinPaths(wantMC, nA, nB, wantMN, nextA)
					gotMC, gotMN := nC.Clone(), cloneIntMat(nextC0)
					MaxMinMulAddPathsPacked(gotMC, nA, PM, gotMN, nextA)
					if !gotMC.Equal(wantMC) || !intMatEqual(gotMN, wantMN) {
						t.Fatalf("max-min paths fused differs (%v, d=%.1f)", s, d)
					}
					PM.Release()
				}
			}
		})
	}
}

// TestFusedReuseCounters locks in the fused observability: a packed
// panel's first dense sweep counts pack bytes, every later sweep counts
// the same bytes as reuse, and stream-mode panels count neither.
func TestFusedReuseCounters(t *testing.T) {
	withTuning(t, fusedTunings()["pack-dense"])
	rng := rand.New(rand.NewSource(37))
	A := diffMat(rng, 16, 16, 1, Inf)
	B := diffMat(rng, 16, 16, 1, Inf)

	before := ReadKernelCounters()
	P := PackPanel(B, Inf)
	if !P.Packed() {
		t.Fatal("dense panel not packed")
	}
	const reuses = 4
	for i := 0; i < reuses; i++ {
		MinPlusMulAddPacked(diffMat(rng, 16, 16, 0.5, Inf), A, P)
	}
	P.Release()
	d := ReadKernelCounters().Sub(before)
	if d.Calls != reuses || d.DenseCalls != reuses {
		t.Fatalf("counted %+v, want %d dense calls", d, reuses)
	}
	if d.PackedBytes != 16*16*8 {
		t.Fatalf("packed %d bytes, want %d", d.PackedBytes, 16*16*8)
	}
	if d.PackedReuseBytes != (reuses-1)*16*16*8 {
		t.Fatalf("reuse bytes %d, want %d", d.PackedReuseBytes, (reuses-1)*16*16*8)
	}

	SetGemmTuning(fusedTunings()["pack-refused"])
	before = ReadKernelCounters()
	PS := PackPanel(B, Inf)
	if PS.Packed() {
		t.Fatal("pack-refused tuning still packed")
	}
	MinPlusMulAddPacked(diffMat(rng, 16, 16, 0.5, Inf), A, PS)
	PS.Release()
	d = ReadKernelCounters().Sub(before)
	if d.StreamCalls != 1 || d.PackedBytes != 0 || d.PackedReuseBytes != 0 {
		t.Fatalf("stream-mode panel counted %+v", d)
	}
}

// TestPhaseCounters checks the per-phase timers and the fused/staged
// elimination counters accumulate where they claim.
func TestPhaseCounters(t *testing.T) {
	before := ReadKernelCounters()
	AddPhaseTime(PhaseDiag, 3*time.Microsecond)
	AddPhaseTime(PhasePanel, 5*time.Microsecond)
	AddPhaseTime(PhaseOuter, 7*time.Microsecond)
	AddPhaseTime(PhaseOuter, -time.Microsecond) // ignored
	CountElimination(true)
	CountElimination(false)
	d := ReadKernelCounters().Sub(before)
	if d.DiagNS != 3000 || d.PanelNS != 5000 || d.OuterNS != 7000 {
		t.Fatalf("phase ns %d/%d/%d", d.DiagNS, d.PanelNS, d.OuterNS)
	}
	if d.FusedElims != 1 || d.StagedElims != 1 {
		t.Fatalf("elims %d fused / %d staged", d.FusedElims, d.StagedElims)
	}
}

// FuzzFusedDifferential fuzzes shapes, densities, and weights through
// the fused pipeline under every fused tuning, against the staged path.
func FuzzFusedDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(9), uint8(10), uint8(128))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint8(33), uint8(5), uint8(17), uint8(255))
	f.Add(int64(4), uint8(9), uint8(65), uint8(77), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, r, m, c, dens uint8) {
		rows, mid, cols := int(r%40)+1, int(m%40)+1, int(c%40)+1
		d := float64(dens) / 255
		rng := rand.New(rand.NewSource(seed))
		A := diffMat(rng, rows, mid, d, Inf)
		B := diffMat(rng, mid, cols, d, Inf)
		C := diffMat(rng, rows, cols, 0.5, Inf)
		nextA := diffHops(rng, rows, mid)
		nextC0 := diffHops(rng, rows, cols)
		for name, tn := range fusedTunings() {
			prev := SetGemmTuning(tn)
			staged := C.Clone()
			MinPlusMulAdd(staged, A, B)
			P := PackPanel(B, Inf)
			fused := C.Clone()
			MinPlusMulAddPacked(fused, A, P)
			wantC, wantN := C.Clone(), cloneIntMat(nextC0)
			MinPlusMulAddPaths(wantC, A, B, wantN, nextA)
			gotC, gotN := C.Clone(), cloneIntMat(nextC0)
			MinPlusMulAddPathsPacked(gotC, A, P, gotN, nextA)
			P.Release()
			SetGemmTuning(prev)
			if !fused.Equal(staged) {
				t.Fatalf("tuning %s: fused differs from staged (%d×%d×%d, d=%.2f)",
					name, rows, mid, cols, d)
			}
			if !gotC.Equal(wantC) || !intMatEqual(gotN, wantN) {
				t.Fatalf("tuning %s: fused paths differ from staged (%d×%d×%d, d=%.2f)",
					name, rows, mid, cols, d)
			}
		}
	})
}

// TestMaxMinVecMatAdd checks the bottleneck sweep kernels against the
// generic 1×n MulAdd route they replace.
func TestMaxMinVecMatAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	A := diffMat(rng, 7, 12, 0.6, -Inf)
	x := make([]float64, 7)
	y := make([]float64, 12)
	for i := range x {
		x[i] = rng.Float64() * 5
	}
	x[3] = -Inf
	for j := range y {
		y[j] = rng.Float64()
	}
	want := append([]float64(nil), y...)
	for j := 0; j < 12; j++ {
		for i := 0; i < 7; i++ {
			v := x[i]
			if a := A.At(i, j); a < v {
				v = a
			}
			if v > want[j] {
				want[j] = v
			}
		}
	}
	got := append([]float64(nil), y...)
	MaxMinVecMatAdd(got, x, A)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("MaxMinVecMatAdd[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestMaxMinMatVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	A := diffMat(rng, 9, 6, 0.6, -Inf)
	x := make([]float64, 6)
	y := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64() * 5
	}
	x[2] = -Inf
	for j := range y {
		y[j] = rng.Float64()
	}
	want := append([]float64(nil), y...)
	for i := 0; i < 9; i++ {
		for j := 0; j < 6; j++ {
			v := x[j]
			if a := A.At(i, j); a < v {
				v = a
			}
			if v > want[i] {
				want[i] = v
			}
		}
	}
	got := append([]float64(nil), y...)
	MaxMinMatVecAdd(got, A, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MaxMinMatVecAdd[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// All-zero x must early-return without touching y.
	for j := range x {
		x[j] = -Inf
	}
	got2 := append([]float64(nil), y...)
	MaxMinMatVecAdd(got2, A, x)
	for i := range y {
		if got2[i] != y[i] {
			t.Fatal("all--Inf MatVecAdd modified y")
		}
	}
}

// Inf fast-path regression benchmarks (satellite audit): the all-Inf
// variants must run far faster than the dense ones — if a kernel loses
// its zero skip, the "AllInf" number collapses onto the dense number.

func benchFusedSetup(b *testing.B, density float64) (Mat, Mat, Mat, *PackedPanel) {
	b.Helper()
	prev := SetGemmTuning(fusedTunings()["pack-dense"])
	b.Cleanup(func() { SetGemmTuning(prev) })
	rng := rand.New(rand.NewSource(47))
	A := diffMat(rng, 256, 256, density, Inf)
	B := diffMat(rng, 256, 256, 1, Inf)
	C := diffMat(rng, 256, 256, 0.5, Inf)
	P := PackPanel(B, Inf)
	b.Cleanup(P.Release)
	return C, A, B, P
}

func BenchmarkFusedMinPlusDense(b *testing.B) {
	C, A, _, P := benchFusedSetup(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusMulAddPacked(C, A, P)
	}
}

func BenchmarkFusedMinPlusAllInfA(b *testing.B) {
	C, A, _, P := benchFusedSetup(b, 0)
	// A is all-Inf: the row-level skip must make the sweep near-free
	// even though the dispatch is forced dense.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusMulAddPacked(C, A, P)
	}
}

func BenchmarkMaxMinMatVecAddDense(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	A := diffMat(rng, 512, 512, 1, -Inf)
	x := make([]float64, 512)
	y := make([]float64, 512)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMinMatVecAdd(y, A, x)
	}
}

func BenchmarkMaxMinMatVecAddAllInf(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	A := diffMat(rng, 512, 512, 1, -Inf)
	x := make([]float64, 512)
	y := make([]float64, 512)
	for i := range x {
		x[i] = -Inf
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMinMatVecAdd(y, A, x)
	}
}

func BenchmarkMinPlusPathsPackedDense(b *testing.B) {
	C, A, _, P := benchFusedSetup(b, 1)
	rng := rand.New(rand.NewSource(59))
	nextA := diffHops(rng, 256, 256)
	nextC := diffHops(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusMulAddPathsPacked(C, A, P, nextC, nextA)
	}
}

func BenchmarkMinPlusPathsPackedAllInfA(b *testing.B) {
	C, A, _, P := benchFusedSetup(b, 0)
	rng := rand.New(rand.NewSource(59))
	nextA := diffHops(rng, 256, 256)
	nextC := diffHops(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusMulAddPathsPacked(C, A, P, nextC, nextA)
	}
}
