package semiring

// Kernel-level observability: process-wide atomic counters updated by
// the adaptive GEMM entry points. The counters make the dispatch
// heuristic observable in production — core.Profile snapshots them per
// solve and serve exposes the cumulative values at /metrics — so a
// mis-tuned density threshold shows up as a skewed dense/stream ratio
// instead of a silent slowdown.
//
// Update cost is a handful of atomic adds per MulAdd call (calls are
// per-panel, thousands per solve, each doing ≥10⁵ fused ops), so the
// counters stay on unconditionally.

import "sync/atomic"

// kernelStats is the process-wide counter block.
var kernelStats struct {
	calls       atomic.Uint64
	dense       atomic.Uint64
	stream      atomic.Uint64
	parShards   atomic.Uint64
	fusedOps    atomic.Uint64
	packedBytes atomic.Uint64
}

// KernelCounters is a snapshot of the adaptive GEMM counters.
type KernelCounters struct {
	// Calls counts adaptive MulAdd invocations (all semirings, with and
	// without path tracking).
	Calls uint64 `json:"calls"`
	// DenseCalls counts calls dispatched to the packed register-blocked
	// path; StreamCalls counts calls dispatched to the Inf-skip
	// streaming path. DenseCalls + StreamCalls == Calls.
	DenseCalls  uint64 `json:"dense_calls"`
	StreamCalls uint64 `json:"stream_calls"`
	// ParallelShards counts i-range shards spawned for large GEMMs
	// (zero when every call ran serially).
	ParallelShards uint64 `json:"parallel_shards"`
	// FusedOps counts fused add-min relaxations attempted: r·m·c per
	// dense call, one B-row pass per finite A entry for stream calls.
	// The dense/stream asymmetry is the point — it measures work the
	// Inf skip avoided.
	FusedOps uint64 `json:"fused_ops"`
	// PackedBytes counts bytes copied into packed B tiles.
	PackedBytes uint64 `json:"packed_bytes"`
}

// ReadKernelCounters returns the current cumulative counter values.
func ReadKernelCounters() KernelCounters {
	return KernelCounters{
		Calls:          kernelStats.calls.Load(),
		DenseCalls:     kernelStats.dense.Load(),
		StreamCalls:    kernelStats.stream.Load(),
		ParallelShards: kernelStats.parShards.Load(),
		FusedOps:       kernelStats.fusedOps.Load(),
		PackedBytes:    kernelStats.packedBytes.Load(),
	}
}

// Sub returns the counter delta k − prev. Deltas are exact when no
// other solve runs concurrently; under concurrent solves they attribute
// the union of both (the counters are process-wide).
func (k KernelCounters) Sub(prev KernelCounters) KernelCounters {
	return KernelCounters{
		Calls:          k.Calls - prev.Calls,
		DenseCalls:     k.DenseCalls - prev.DenseCalls,
		StreamCalls:    k.StreamCalls - prev.StreamCalls,
		ParallelShards: k.ParallelShards - prev.ParallelShards,
		FusedOps:       k.FusedOps - prev.FusedOps,
		PackedBytes:    k.PackedBytes - prev.PackedBytes,
	}
}

// DenseRatio returns the fraction of calls dispatched to the dense
// packed path (0 when no calls were made).
func (k KernelCounters) DenseRatio() float64 {
	if k.Calls == 0 {
		return 0
	}
	return float64(k.DenseCalls) / float64(k.Calls)
}

// HasVectorKernel reports whether the dense min-plus path runs the
// SIMD micro-kernel on this machine (amd64 with AVX2) rather than the
// scalar register-blocked one.
func HasVectorKernel() bool { return useAVX2 }
