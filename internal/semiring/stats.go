package semiring

// Kernel-level observability: process-wide atomic counters updated by
// the adaptive GEMM entry points. The counters make the dispatch
// heuristic observable in production — core.Profile snapshots them per
// solve and serve exposes the cumulative values at /metrics — so a
// mis-tuned density threshold shows up as a skewed dense/stream ratio
// instead of a silent slowdown.
//
// Update cost is a handful of atomic adds per MulAdd call (calls are
// per-panel, thousands per solve, each doing ≥10⁵ fused ops), so the
// counters stay on unconditionally. The per-phase timers are coarser
// still: two clock reads per supernode elimination stage.

import "sync/atomic"

// kernelStats is the process-wide counter block.
var kernelStats struct {
	calls            atomic.Uint64
	dense            atomic.Uint64
	stream           atomic.Uint64
	parShards        atomic.Uint64
	fusedOps         atomic.Uint64
	packedBytes      atomic.Uint64
	packedReuseBytes atomic.Uint64
	fusedElims       atomic.Uint64
	stagedElims      atomic.Uint64
	diagNS           atomic.Uint64
	panelNS          atomic.Uint64
	outerNS          atomic.Uint64
}

// KernelCounters is a snapshot of the adaptive GEMM counters.
type KernelCounters struct {
	// Calls counts adaptive MulAdd invocations (all semirings, with and
	// without path tracking, packed and staged).
	Calls uint64 `json:"calls"`
	// DenseCalls counts calls dispatched to the packed register-blocked
	// path; StreamCalls counts calls dispatched to the Inf-skip
	// streaming path. DenseCalls + StreamCalls == Calls.
	DenseCalls  uint64 `json:"dense_calls"`
	StreamCalls uint64 `json:"stream_calls"`
	// ParallelShards counts i-range shards spawned for large GEMMs
	// (zero when every call ran serially).
	ParallelShards uint64 `json:"parallel_shards"`
	// FusedOps counts fused add-min relaxations attempted: r·m·c per
	// dense call, one B-row pass per finite A entry for stream calls.
	// The dense/stream asymmetry is the point — it measures work the
	// Inf skip avoided.
	FusedOps uint64 `json:"fused_ops"`
	// PackedBytes counts bytes copied into packed B tiles (each tile
	// counted once, at pack time).
	PackedBytes uint64 `json:"packed_bytes"`
	// PackedReuseBytes counts packed bytes REUSED by the fused pipeline:
	// every MulAddPacked sweep over an already-packed panel after the
	// first adds the panel's size. This is exactly the staging traffic
	// the staged three-call path would have re-copied, i.e. the memory
	// the fusion saved.
	PackedReuseBytes uint64 `json:"packed_reuse_bytes"`
	// FusedElims / StagedElims count supernode eliminations run through
	// the fused pack-once pipeline vs the staged per-call path — the
	// fused-vs-staged dispatch made observable.
	FusedElims  uint64 `json:"fused_elims"`
	StagedElims uint64 `json:"staged_elims"`
	// DiagNS / PanelNS / OuterNS are wall nanoseconds spent in the three
	// elimination phases (diagonal FW closure, panel updates, outer
	// scatter). Concurrent supernodes overlap, so these are per-phase
	// wall footprints, not summed CPU time; their ratio is what kernel
	// tuning steers.
	DiagNS  uint64 `json:"diag_ns"`
	PanelNS uint64 `json:"panel_ns"`
	OuterNS uint64 `json:"outer_ns"`
}

// ReadKernelCounters returns the current cumulative counter values.
func ReadKernelCounters() KernelCounters {
	return KernelCounters{
		Calls:            kernelStats.calls.Load(),
		DenseCalls:       kernelStats.dense.Load(),
		StreamCalls:      kernelStats.stream.Load(),
		ParallelShards:   kernelStats.parShards.Load(),
		FusedOps:         kernelStats.fusedOps.Load(),
		PackedBytes:      kernelStats.packedBytes.Load(),
		PackedReuseBytes: kernelStats.packedReuseBytes.Load(),
		FusedElims:       kernelStats.fusedElims.Load(),
		StagedElims:      kernelStats.stagedElims.Load(),
		DiagNS:           kernelStats.diagNS.Load(),
		PanelNS:          kernelStats.panelNS.Load(),
		OuterNS:          kernelStats.outerNS.Load(),
	}
}

// Sub returns the counter delta k − prev. Deltas are exact when no
// other solve runs concurrently; under concurrent solves they attribute
// the union of both (the counters are process-wide).
func (k KernelCounters) Sub(prev KernelCounters) KernelCounters {
	return KernelCounters{
		Calls:            k.Calls - prev.Calls,
		DenseCalls:       k.DenseCalls - prev.DenseCalls,
		StreamCalls:      k.StreamCalls - prev.StreamCalls,
		ParallelShards:   k.ParallelShards - prev.ParallelShards,
		FusedOps:         k.FusedOps - prev.FusedOps,
		PackedBytes:      k.PackedBytes - prev.PackedBytes,
		PackedReuseBytes: k.PackedReuseBytes - prev.PackedReuseBytes,
		FusedElims:       k.FusedElims - prev.FusedElims,
		StagedElims:      k.StagedElims - prev.StagedElims,
		DiagNS:           k.DiagNS - prev.DiagNS,
		PanelNS:          k.PanelNS - prev.PanelNS,
		OuterNS:          k.OuterNS - prev.OuterNS,
	}
}

// DenseRatio returns the fraction of calls dispatched to the dense
// packed path (0 when no calls were made).
func (k KernelCounters) DenseRatio() float64 {
	if k.Calls == 0 {
		return 0
	}
	return float64(k.DenseCalls) / float64(k.Calls)
}

// HasVectorKernel reports whether the dense min-plus path runs a SIMD
// micro-kernel on this machine (amd64 with AVX2 or AVX-512) rather than
// the scalar register-blocked one.
func HasVectorKernel() bool { return useAVX2 || useAVX512 }

// HasAVX512 reports whether the 16-lane AVX-512 kernels (including the
// vectorized max-min and index-carrying Paths variants) are active.
func HasAVX512() bool { return useAVX512 }
