package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveFW is the textbook reference (out-of-place per iteration to be
// maximally literal about the recurrence).
func naiveFW(A Mat) Mat {
	n := A.Rows
	cur := A.Clone()
	for k := 0; k < n; k++ {
		next := cur.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := cur.At(i, k) + cur.At(k, j); v < next.At(i, j) {
					next.Set(i, j, v)
				}
			}
		}
		cur = next
	}
	return cur
}

func TestFloydWarshallMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		for _, inf := range []float64{0, 0.3, 0.8} {
			A := randomDist(rng, n, inf)
			want := naiveFW(A)
			got := A.Clone()
			FloydWarshall(got)
			if !got.EqualTol(want, 1e-12) {
				t.Fatalf("FW mismatch n=%d infFrac=%g", n, inf)
			}
		}
	}
}

func TestBlockedFWMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 16, 33, 64, 100} {
		for _, b := range []int{1, 4, 7, 16, 100} {
			A := randomDist(rng, n, 0.5)
			want := A.Clone()
			FloydWarshall(want)
			got := A.Clone()
			BlockedFloydWarshall(got, b)
			if !got.EqualTol(want, 1e-12) {
				t.Fatalf("BlockedFW mismatch n=%d b=%d", n, b)
			}
		}
	}
}

func TestParallelBlockedFWMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{10, 64, 129} {
		for _, threads := range []int{1, 2, 4, 8} {
			A := randomDist(rng, n, 0.5)
			want := A.Clone()
			FloydWarshall(want)
			got := A.Clone()
			ParallelBlockedFloydWarshall(got, 16, threads)
			if !got.EqualTol(want, 1e-12) {
				t.Fatalf("ParallelBlockedFW mismatch n=%d threads=%d", n, threads)
			}
		}
	}
}

// TestFWIdempotent: closure is a fixpoint — FW(FW(A)) = FW(A).
func TestFWIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	A := randomDist(rng, 30, 0.6)
	FloydWarshall(A)
	again := A.Clone()
	FloydWarshall(again)
	// Tolerance rather than exact equality: float addition is not
	// associative, so a second sweep may shave off rounding ulps.
	if !again.EqualTol(A, 1e-12) {
		t.Error("FW must be idempotent on a closed matrix")
	}
}

// TestFWTriangleInequality: the closure satisfies D[i][j] ≤ D[i][k]+D[k][j].
func TestFWTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	A := randomDist(rng, 25, 0.5)
	FloydWarshall(A)
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			for k := 0; k < 25; k++ {
				if A.At(i, j) > A.At(i, k)+A.At(k, j)+1e-12 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestFWSymmetryPreserved: symmetric input yields symmetric closure.
func TestFWSymmetryPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	A := randomDist(rng, 31, 0.4)
	FloydWarshall(A)
	if !A.IsSymmetric() {
		t.Error("closure of a symmetric matrix must be symmetric")
	}
}

// Property-based: random small distance matrices, blocked == scalar.
func TestBlockedFWQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64, nRaw uint8, bRaw uint8) bool {
		n := int(nRaw%24) + 1
		b := int(bRaw%8) + 1
		r := rand.New(rand.NewSource(seed))
		A := randomDist(r, n, 0.5)
		want := A.Clone()
		FloydWarshall(want)
		got := A.Clone()
		BlockedFloydWarshall(got, b)
		return got.EqualTol(want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestHasNegativeCycle(t *testing.T) {
	A := NewInfMat(2, 2)
	A.Set(0, 0, 0)
	A.Set(1, 1, 0)
	A.Set(0, 1, -2)
	A.Set(1, 0, 1)
	FloydWarshall(A)
	if !HasNegativeCycle(A) {
		t.Error("0→1→0 with total -1 is a negative cycle")
	}
	B := NewInfMat(2, 2)
	B.Set(0, 0, 0)
	B.Set(1, 1, 0)
	B.Set(0, 1, -2)
	B.Set(1, 0, 3)
	FloydWarshall(B)
	if HasNegativeCycle(B) {
		t.Error("total +1 cycle is not negative")
	}
}

func TestFWDisconnected(t *testing.T) {
	// Two components: distances across must stay Inf.
	A := NewInfMat(4, 4)
	for i := 0; i < 4; i++ {
		A.Set(i, i, 0)
	}
	A.Set(0, 1, 1)
	A.Set(1, 0, 1)
	A.Set(2, 3, 2)
	A.Set(3, 2, 2)
	FloydWarshall(A)
	if A.At(0, 2) != Inf || A.At(3, 1) != Inf {
		t.Error("cross-component distances must remain Inf")
	}
	if A.At(0, 1) != 1 || A.At(2, 3) != 2 {
		t.Error("within-component distances wrong")
	}
}
