package semiring

// Dense Floyd-Warshall kernels (Algorithm 1 of the paper) and the blocked
// variant (Algorithm 2). These operate in place on a square distance
// matrix whose entries are initialized from the edge weights, Inf where no
// edge exists, and 0 on the diagonal.

// FloydWarshall runs the classic three-nested-loop Floyd-Warshall
// algorithm in place on the square matrix A. After it returns, A[i][j] is
// the length of the shortest path from i to j using any intermediates.
func FloydWarshall(A Mat) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: FloydWarshall requires a square matrix")
	}
	for k := 0; k < n; k++ {
		krow := A.Row(k)
		for i := 0; i < n; i++ {
			irow := A.Row(i)
			aik := irow[k]
			if aik == Inf {
				continue
			}
			kr := krow[:len(irow)]
			for j, bkj := range kr {
				if v := aik + bkj; v < irow[j] {
					irow[j] = v
				}
			}
		}
	}
}

// FloydWarshallStep performs the single outer iteration k of the scalar
// Floyd-Warshall algorithm on A in place. Exposed for instrumented runs
// (e.g. tracking fill density per iteration, as in the paper's Fig 1).
func FloydWarshallStep(A Mat, k int) {
	n := A.Rows
	krow := A.Row(k)
	for i := 0; i < n; i++ {
		irow := A.Row(i)
		aik := irow[k]
		if aik == Inf {
			continue
		}
		kr := krow[:len(irow)]
		for j, bkj := range kr {
			if v := aik + bkj; v < irow[j] {
				irow[j] = v
			}
		}
	}
}

// HasNegativeCycle reports whether a closed distance matrix (the output of
// FloydWarshall or any equivalent APSP routine) witnesses a negative-weight
// cycle, i.e. a negative diagonal entry.
func HasNegativeCycle(A Mat) bool {
	for i := 0; i < A.Rows; i++ {
		if A.At(i, i) < 0 {
			return true
		}
	}
	return false
}

// BlockedFloydWarshall runs the blocked Floyd-Warshall algorithm
// (Algorithm 2) in place on the n×n matrix A with block size b. It
// performs the same computation as FloydWarshall but restructured into
// DiagUpdate, PanelUpdate, and min-plus outer-product steps so nearly all
// work runs through the SemiringGemm kernel.
func BlockedFloydWarshall(A Mat, b int) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: BlockedFloydWarshall requires a square matrix")
	}
	if b <= 0 {
		panic("semiring: block size must be positive")
	}
	for k0 := 0; k0 < n; k0 += b {
		kb := min(b, n-k0)
		Akk := A.View(k0, k0, kb, kb)

		// DiagUpdate: close the diagonal block.
		FloydWarshall(Akk)

		// PanelUpdate: block row from the left, block column from the
		// right. A panel update with a *closed* diagonal block needs no
		// iteration (paths within the block are already shortest).
		for j0 := 0; j0 < n; j0 += b {
			if j0 == k0 {
				continue
			}
			jb := min(b, n-j0)
			panelRowUpdate(A.View(k0, j0, kb, jb), Akk)
			panelColUpdate(A.View(j0, k0, jb, kb), Akk)
		}

		// MinPlus outer product on all remaining blocks.
		for i0 := 0; i0 < n; i0 += b {
			if i0 == k0 {
				continue
			}
			ib := min(b, n-i0)
			Aik := A.View(i0, k0, ib, kb)
			for j0 := 0; j0 < n; j0 += b {
				if j0 == k0 {
					continue
				}
				jb := min(b, n-j0)
				MinPlusMulAdd(A.View(i0, j0, ib, jb), Aik, A.View(k0, j0, kb, jb))
			}
		}
	}
}

// panelRowUpdate computes P = P ⊕ (D ⊗ P) where D is a closed (transitively
// reduced) square diagonal block. Because D is closed, a single pass
// suffices; the result cannot be improved by iterating.
func panelRowUpdate(P, D Mat) {
	tmp := MinPlusMul(D, P)
	EwiseMinInto(P, tmp)
}

// panelColUpdate computes P = P ⊕ (P ⊗ D) for a closed diagonal block D.
func panelColUpdate(P, D Mat) {
	tmp := MinPlusMul(P, D)
	EwiseMinInto(P, tmp)
}
