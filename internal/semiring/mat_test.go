package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMat(rng *rand.Rand, r, c int, infFrac float64) Mat {
	m := NewMat(r, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			if rng.Float64() < infFrac {
				row[j] = Inf
			} else {
				row[j] = rng.Float64() * 10
			}
		}
	}
	return m
}

// randomDist returns a random symmetric "distance-like" square matrix:
// zero diagonal, symmetric finite/Inf pattern.
func randomDist(rng *rand.Rand, n int, infFrac float64) Mat {
	m := NewInfMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := i + 1; j < n; j++ {
			if rng.Float64() >= infFrac {
				w := 0.1 + rng.Float64()*10
				m.Set(i, j, w)
				m.Set(j, i, w)
			}
		}
	}
	return m
}

func TestPlusTimes(t *testing.T) {
	if Plus(3, 5) != 3 || Plus(5, 3) != 3 {
		t.Error("Plus should be min")
	}
	if Times(3, 5) != 8 {
		t.Error("Times should be +")
	}
	if !math.IsInf(Times(3, Inf), 1) || !math.IsInf(Times(Inf, Inf), 1) {
		t.Error("Times must saturate at Inf")
	}
	if Plus(3, Inf) != 3 {
		t.Error("Inf is the ⊕ identity")
	}
	if Times(0, 7) != 7 {
		t.Error("0 is the ⊗ identity")
	}
}

func TestSemiringAxiomsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	clamp := func(x float64) float64 {
		if math.IsNaN(x) {
			return 0
		}
		return math.Mod(math.Abs(x), 1e6)
	}
	// ⊕ associative/commutative, ⊗ associative, ⊗ distributes over ⊕.
	if err := quick.Check(func(a, b, c float64) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		if Plus(Plus(a, b), c) != Plus(a, Plus(b, c)) {
			return false
		}
		if Plus(a, b) != Plus(b, a) {
			return false
		}
		if Times(Times(a, b), c) != Times(a, Times(b, c)) {
			return false
		}
		lhs := Times(a, Plus(b, c))
		rhs := Plus(Times(a, b), Times(a, c))
		return math.Abs(lhs-rhs) < 1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatViewAliasing(t *testing.T) {
	m := NewMat(6, 8)
	v := m.View(2, 3, 3, 4)
	v.Set(0, 0, 42)
	if m.At(2, 3) != 42 {
		t.Error("view must alias parent storage")
	}
	if v.Rows != 3 || v.Cols != 4 {
		t.Error("view shape wrong")
	}
	v2 := v.View(1, 1, 2, 2)
	v2.Set(1, 1, 7)
	if m.At(4, 5) != 7 {
		t.Error("nested view must alias parent storage")
	}
}

func TestMatViewBounds(t *testing.T) {
	m := NewMat(4, 4)
	for _, bad := range [][4]int{{0, 0, 5, 1}, {0, 0, 1, 5}, {-1, 0, 1, 1}, {3, 3, 2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("View%v should panic", bad)
				}
			}()
			m.View(bad[0], bad[1], bad[2], bad[3])
		}()
	}
	// Zero-size views are fine.
	z := m.View(2, 2, 0, 0)
	if z.Rows != 0 || z.Cols != 0 {
		t.Error("zero view shape")
	}
}

func TestCloneCopyEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMat(rng, 5, 7, 0.3)
	c := m.Clone()
	if !c.Equal(m) {
		t.Error("clone must equal source")
	}
	c.Set(1, 1, -99)
	if c.Equal(m) {
		t.Error("clone must not alias source")
	}
	d := NewMat(5, 7)
	d.Copy(m)
	if !d.Equal(m) {
		t.Error("copy must equal source")
	}
	// Inf == Inf under Equal
	a := NewInfMat(2, 2)
	b := NewInfMat(2, 2)
	if !a.Equal(b) {
		t.Error("all-Inf matrices should be equal")
	}
}

func TestEqualTol(t *testing.T) {
	a := NewMat(2, 2)
	b := NewMat(2, 2)
	b.Set(0, 0, 1e-12)
	if !a.EqualTol(b, 1e-9) {
		t.Error("should match within tolerance")
	}
	b.Set(0, 0, 1)
	if a.EqualTol(b, 1e-9) {
		t.Error("should differ")
	}
	b.Set(0, 0, Inf)
	if a.EqualTol(b, 1e9) {
		t.Error("Inf vs finite must never match")
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 9
	m := randomDist(rng, n, 0.4)
	perm := rng.Perm(n)
	out := NewMat(n, n)
	Permute(out, m, perm)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if out.At(i, j) != m.At(perm[i], perm[j]) {
				t.Fatalf("Permute wrong at (%d,%d)", i, j)
			}
		}
	}
	// Permute then inverse-permute is identity.
	iperm := make([]int, n)
	for i, p := range perm {
		iperm[p] = i
	}
	back := NewMat(n, n)
	Permute(back, out, iperm)
	if !back.Equal(m) {
		t.Error("permute ∘ inverse-permute must be identity")
	}
}

func TestCountFiniteAndSymmetric(t *testing.T) {
	m := NewInfMat(3, 3)
	if m.CountFinite() != 0 {
		t.Error("all-Inf has 0 finite")
	}
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	if m.CountFinite() != 2 {
		t.Error("count finite wrong")
	}
	if !m.IsSymmetric() {
		t.Error("should be symmetric")
	}
	m.Set(0, 2, 5)
	if m.IsSymmetric() {
		t.Error("should be asymmetric")
	}
}

func TestIsSymmetricNonSquare(t *testing.T) {
	if NewMat(2, 3).IsSymmetric() {
		t.Error("non-square is never symmetric")
	}
}
