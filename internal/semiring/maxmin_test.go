package semiring

import (
	"math"
	"math/rand"
	"testing"
)

// randomCap returns a random symmetric capacity matrix: +Inf diagonal,
// -Inf non-edges.
func randomCap(rng *rand.Rand, n int, edgeFrac float64) Mat {
	m := NewMat(n, n)
	m.Fill(math.Inf(-1))
	for i := 0; i < n; i++ {
		m.Set(i, i, Inf)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeFrac {
				c := rng.Float64() * 10
				m.Set(i, j, c)
				m.Set(j, i, c)
			}
		}
	}
	return m
}

// naiveMaxMin is the reference O(n³) kernel.
func naiveMaxMin(C, A, B Mat) {
	for i := 0; i < C.Rows; i++ {
		for j := 0; j < C.Cols; j++ {
			best := C.At(i, j)
			for k := 0; k < A.Cols; k++ {
				v := math.Min(A.At(i, k), B.At(k, j))
				if v > best {
					best = v
				}
			}
			C.Set(i, j, best)
		}
	}
}

func TestMaxMinMulAddMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, s := range [][3]int{{1, 1, 1}, {5, 7, 3}, {20, 20, 20}} {
		A := randomCap(rng, max2(s[0], s[1]), 0.4).View(0, 0, s[0], s[1])
		B := randomCap(rng, max2(s[1], s[2]), 0.4).View(0, 0, s[1], s[2])
		C := NewMat(s[0], s[2])
		C.Fill(math.Inf(-1))
		want := C.Clone()
		naiveMaxMin(want, A, B)
		MaxMinMulAdd(C, A, B)
		for i := 0; i < C.Rows; i++ {
			for j := 0; j < C.Cols; j++ {
				if C.At(i, j) != want.At(i, j) {
					t.Fatalf("shape %v mismatch at (%d,%d): %g vs %g", s, i, j, C.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// naiveMaxMinFW is the textbook max-min closure.
func naiveMaxMinFW(A Mat) Mat {
	out := A.Clone()
	n := A.Rows
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := math.Min(out.At(i, k), out.At(k, j))
				if v > out.At(i, j) {
					out.Set(i, j, v)
				}
			}
		}
	}
	return out
}

func TestMaxMinFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 4, 15, 40} {
		A := randomCap(rng, n, 0.3)
		want := naiveMaxMinFW(A)
		got := A.Clone()
		MaxMinFloydWarshall(got)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("n=%d mismatch at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestMaxMinWidestSemantics(t *testing.T) {
	// Two disjoint routes 0→3: bottlenecks 5 and 8. Expect 8.
	A := NewMat(4, 4)
	A.Fill(math.Inf(-1))
	for i := 0; i < 4; i++ {
		A.Set(i, i, Inf)
	}
	set := func(i, j int, v float64) { A.Set(i, j, v); A.Set(j, i, v) }
	set(0, 1, 10)
	set(1, 3, 5)
	set(0, 2, 8)
	set(2, 3, 9)
	MaxMinFloydWarshall(A)
	if A.At(0, 3) != 8 {
		t.Fatalf("widest 0→3 = %g, want 8", A.At(0, 3))
	}
}

func TestMaxMinPathsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 25
	A := randomCap(rng, n, 0.25)
	next := NewIntMat(n, n)
	InitNextHops(A, next)
	want := naiveMaxMinFW(A)
	got := A.Clone()
	MaxMinFloydWarshallPaths(got, next)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("paths FW changed values at (%d,%d)", i, j)
			}
		}
	}
	// Follow hops: every reachable pair's chain must terminate and its
	// bottleneck must equal the reported capacity.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || math.IsInf(got.At(u, v), -1) {
				continue
			}
			cur, hops, bottleneck := u, 0, Inf
			for cur != v {
				nx := next.At(cur, v)
				if nx < 0 || hops > n {
					t.Fatalf("broken chain at (%d,%d)", u, v)
				}
				c := A.At(cur, int(nx))
				if math.IsInf(c, -1) {
					t.Fatalf("chain uses non-edge at (%d,%d)", u, v)
				}
				if c < bottleneck {
					bottleneck = c
				}
				cur = int(nx)
				hops++
			}
			if bottleneck != got.At(u, v) {
				t.Fatalf("chain bottleneck %g != reported %g at (%d,%d)", bottleneck, got.At(u, v), u, v)
			}
		}
	}
}

func TestParallelBlockedFWKernelsMaxMin(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 70
	A := randomCap(rng, n, 0.2)
	want := naiveMaxMinFW(A)
	for _, threads := range []int{1, 4} {
		got := A.Clone()
		ParallelBlockedFWKernels(got, IntMat{}, false, 16, threads, MaxMinKernels)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("threads=%d mismatch at (%d,%d)", threads, i, j)
				}
			}
		}
	}
}

func TestKernelsScalarOps(t *testing.T) {
	if MinPlusKernels.AddScalar(2, 3) != 2 || MinPlusKernels.MulScalar(2, 3) != 5 {
		t.Error("min-plus scalar ops wrong")
	}
	if MaxMinKernels.AddScalar(2, 3) != 3 || MaxMinKernels.MulScalar(2, 3) != 2 {
		t.Error("max-min scalar ops wrong")
	}
	if MinPlusKernels.Zero != Inf || MinPlusKernels.One != 0 {
		t.Error("min-plus identities wrong")
	}
	if !math.IsInf(MaxMinKernels.Zero, -1) || !math.IsInf(MaxMinKernels.One, 1) {
		t.Error("max-min identities wrong")
	}
	if !MinPlusKernels.DetectNegCycle || MaxMinKernels.DetectNegCycle {
		t.Error("neg-cycle flags wrong")
	}
}

func TestMaxMinMulAddPathsMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	A := randomCap(rng, 12, 0.4)
	B := randomCap(rng, 12, 0.4)
	C1 := NewMat(12, 12)
	C1.Fill(math.Inf(-1))
	C2 := C1.Clone()
	nc := NewIntMat(12, 12)
	na := NewIntMat(12, 12)
	MaxMinMulAdd(C1, A, B)
	MaxMinMulAddPaths(C2, A, B, nc, na)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if C1.At(i, j) != C2.At(i, j) {
				t.Fatalf("paths variant changed values at (%d,%d)", i, j)
			}
		}
	}
}
