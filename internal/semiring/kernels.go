package semiring

// Kernels bundles the dense kernels of one closed semiring so the
// supernodal engine can run over any path algebra — the generality the
// paper's semiring framing promises. Two instances are provided:
// MinPlusKernels (shortest paths) and MaxMinKernels (widest/bottleneck
// paths). All kernels must tolerate the same in-place aliasing the
// min-plus kernels document (the arguments only use monotonicity and
// idempotence of ⊕, which hold for any bounded semiring here).
type Kernels struct {
	// Name identifies the semiring in diagnostics.
	Name string
	// Zero is the additive identity: the "no path" value non-edges get.
	Zero float64
	// One is the multiplicative identity: the empty-path value the
	// diagonal gets.
	One float64
	// FW closes a square block in place.
	FW func(Mat)
	// FWPaths is FW with next-hop maintenance.
	FWPaths func(Mat, IntMat)
	// MulAdd computes C = C ⊕ A⊗B. Both semirings route it through the
	// adaptive GEMM engine (dense packed vs Inf-skip streaming dispatch,
	// see gemm.go), so any algebra plugged in here gets the blocked
	// kernels for free.
	MulAdd func(C, A, B Mat)
	// MulAddSerial is MulAdd pinned to the calling goroutine (no
	// i-range sharding). For callers that manage their own worker
	// placement, e.g. the dist simulation's per-rank goroutines.
	MulAddSerial func(C, A, B Mat)
	// MulAddPaths is MulAdd with next-hop maintenance.
	MulAddPaths func(C, A, B Mat, nextC, nextA IntMat)
	// MulAddPacked computes C = C ⊕ A⊗P against a panel packed once
	// with PackPanel — the fused pipeline's reuse-many entry point
	// (fused.go). Serial; callers own the parallel decomposition, and
	// C must not alias the packed operand.
	MulAddPacked func(C, A Mat, P *PackedPanel)
	// MulAddPathsPacked is MulAddPacked with next-hop maintenance.
	MulAddPathsPacked func(C, A Mat, P *PackedPanel, nextC, nextA IntMat)
	// VecMatAdd computes y = y ⊕ (x ⊗ A) with the semiring's zero
	// fast paths; MatVecAdd is y = y ⊕ (A ⊗ x). The factor's SSSP
	// sweeps use these instead of degenerate 1×n MulAdd calls.
	VecMatAdd func(y, x []float64, A Mat)
	MatVecAdd func(y []float64, A Mat, x []float64)
	// AddScalar is the scalar ⊕ (min for min-plus, max for max-min).
	AddScalar func(x, y float64) float64
	// MulScalar is the scalar ⊗ (+ for min-plus, min for max-min).
	MulScalar func(x, y float64) float64
	// DetectNegCycle enables the negative-diagonal check after a solve
	// (meaningful only for the tropical semiring).
	DetectNegCycle bool
}

// MinPlusKernels is the tropical (min, +) semiring: shortest paths.
var MinPlusKernels = &Kernels{
	Name:              "min-plus",
	Zero:              Inf,
	One:               0,
	FW:                FloydWarshall,
	FWPaths:           FloydWarshallPaths,
	MulAdd:            MinPlusMulAdd,
	MulAddSerial:      MinPlusMulAddSerial,
	MulAddPaths:       MinPlusMulAddPaths,
	MulAddPacked:      MinPlusMulAddPacked,
	MulAddPathsPacked: MinPlusMulAddPathsPacked,
	VecMatAdd:         MinPlusVecMatAdd,
	MatVecAdd:         MinPlusMatVecAdd,
	AddScalar:         Plus,
	MulScalar:         Times,
	DetectNegCycle:    true,
}

// MaxMinKernels is the bottleneck (max, min) semiring: widest paths.
var MaxMinKernels = &Kernels{
	Name:              "max-min",
	Zero:              -Inf,
	One:               Inf,
	FW:                MaxMinFloydWarshall,
	FWPaths:           MaxMinFloydWarshallPaths,
	MulAdd:            MaxMinMulAdd,
	MulAddSerial:      MaxMinMulAddSerial,
	MulAddPaths:       MaxMinMulAddPaths,
	MulAddPacked:      MaxMinMulAddPacked,
	MulAddPathsPacked: MaxMinMulAddPathsPacked,
	VecMatAdd:         MaxMinVecMatAdd,
	MatVecAdd:         MaxMinMatVecAdd,
	AddScalar: func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	},
	MulScalar: func(x, y float64) float64 {
		if x < y {
			return x
		}
		return y
	},
}

// PackPanel packs B once for reuse across MulAddPacked calls, using
// this semiring's zero for the density gate (see semiring.PackPanel).
func (k *Kernels) PackPanel(B Mat) *PackedPanel { return PackPanel(B, k.Zero) }

// ParallelBlockedFWKernels is the blocked Floyd-Warshall algorithm over
// an arbitrary semiring, with optional next-hop tracking. See
// ParallelBlockedFloydWarshall for the scheduling structure.
func ParallelBlockedFWKernels(A Mat, next IntMat, track bool, b, threads int, K *Kernels) {
	n := A.Rows
	if A.Cols != n {
		panic("semiring: ParallelBlockedFWKernels requires a square matrix")
	}
	if track && (next.Rows != n || next.Cols != n) {
		panic("semiring: ParallelBlockedFWKernels next-hop shape mismatch")
	}
	nb := (n + b - 1) / b
	blk := func(i int) (int, int) {
		lo := i * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		return lo, hi - lo
	}
	parallelBlockedFW(A, next, track, threads, nb, blk, K)
}
