package semiring

// Differential tests of the adaptive GEMM engine: every dispatch path
// (stream, packed dense, tile remainders, i-sharding, serial pinning)
// must agree exactly with a naive triple-loop reference, across
// densities from all-Inf to fully dense, with mixed-sign weights, for
// both semirings and the path-tracking variants. The tunings are forced
// through SetGemmTuning so no path is left to the dispatch heuristic's
// mercy.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// diffShapes covers degenerate, odd (tile/unroll remainders), and
// quad-blocked sizes. Rows ≥ 8 are required for the dense path, so
// several shapes cross that line in both directions.
var diffShapes = [][3]int{
	{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {8, 5, 7}, {9, 2, 11},
	{16, 16, 16}, {33, 65, 29}, {34, 7, 66},
}

var diffDensities = []float64{0, 0.05, 0.3, 0.7, 1.0}

// diffMat fills a matrix at the given density with mixed-sign weights.
func diffMat(rng *rand.Rand, rows, cols int, density, zero float64) Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Float64()*10 - 3
		} else {
			m.Data[i] = zero
		}
	}
	return m
}

// diffHops fills a next-hop matrix with arbitrary non-negative ids.
func diffHops(rng *rand.Rand, rows, cols int) IntMat {
	m := NewIntMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = int32(rng.Intn(64))
	}
	return m
}

// naiveMinPlusPaths is the canonical k-ascending strict-improvement
// reference for MinPlusMulAddPaths.
func naiveMinPlusPaths(C, A, B Mat, nextC, nextA IntMat) {
	for i := 0; i < C.Rows; i++ {
		for k := 0; k < A.Cols; k++ {
			a := A.At(i, k)
			if a == Inf {
				continue
			}
			for j := 0; j < C.Cols; j++ {
				if v := a + B.At(k, j); v < C.At(i, j) {
					C.Set(i, j, v)
					nextC.Set(i, j, nextA.At(i, k))
				}
			}
		}
	}
}

// naiveMaxMin lives in maxmin_test.go.

// naiveMaxMinPaths is the reference for MaxMinMulAddPaths.
func naiveMaxMinPaths(C, A, B Mat, nextC, nextA IntMat) {
	for i := 0; i < C.Rows; i++ {
		for k := 0; k < A.Cols; k++ {
			a := A.At(i, k)
			if a == -Inf {
				continue
			}
			for j := 0; j < C.Cols; j++ {
				v := a
				if b := B.At(k, j); b < v {
					v = b
				}
				if v > C.At(i, j) {
					C.Set(i, j, v)
					nextC.Set(i, j, nextA.At(i, k))
				}
			}
		}
	}
}

// diffTunings forces each engine path in turn. ParMinRows is at its
// clamp floor so mid-size shapes shard.
func diffTunings() map[string]GemmTuning {
	base := DefaultGemmTuning()
	stream := base
	stream.DenseMinFinite = 2 // unreachable: always stream
	dense := base
	dense.DenseMinFinite = 0 // always dense (rows permitting)
	dense.DenseMinOps = 1
	tiny := dense
	tiny.KTile, tiny.JTile = 5, 9 // odd tiles: k-unroll and j remainders
	tiny.GemmSmall = 8            // stream path goes tiled too
	par := dense
	par.ParMinRows, par.ParMinOps = 8, 1
	parStream := stream
	parStream.ParMinRows, parStream.ParMinOps = 8, 1
	return map[string]GemmTuning{
		"stream": stream, "dense": dense, "tinytiles": tiny,
		"parallel-dense": par, "parallel-stream": parStream,
	}
}

// withTuning installs tn for the duration of the test. Tunings that
// force i-sharding also raise GOMAXPROCS so the shard path is reachable
// on single-core CI runners (wantShard checks worker availability).
func withTuning(t *testing.T, tn GemmTuning) {
	t.Helper()
	prev := SetGemmTuning(tn)
	t.Cleanup(func() { SetGemmTuning(prev) })
	if tn.ParMinOps == 1 {
		prevProcs := runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prevProcs) })
	}
}

func checkNoNaN(t *testing.T, m Mat, ctx string) {
	t.Helper()
	for _, v := range m.Data {
		if math.IsNaN(v) {
			t.Fatalf("%s: NaN in result", ctx)
		}
	}
}

func TestGemmDifferentialMinPlus(t *testing.T) {
	for name, tn := range diffTunings() {
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(11))
			for _, s := range diffShapes {
				for _, d := range diffDensities {
					A := diffMat(rng, s[0], s[1], d, Inf)
					B := diffMat(rng, s[1], s[2], d, Inf)
					C := diffMat(rng, s[0], s[2], 0.5, Inf)
					want := C.Clone()
					naiveMinPlus(want, A, B)
					got := C.Clone()
					MinPlusMulAdd(got, A, B)
					if !got.Equal(want) {
						t.Fatalf("MinPlusMulAdd(%v, d=%.2f) differs from naive", s, d)
					}
					checkNoNaN(t, got, "MinPlusMulAdd")
					gotSerial := C.Clone()
					MinPlusMulAddSerial(gotSerial, A, B)
					if !gotSerial.Equal(want) {
						t.Fatalf("MinPlusMulAddSerial(%v, d=%.2f) differs from naive", s, d)
					}
				}
			}
		})
	}
}

func TestGemmDifferentialMaxMin(t *testing.T) {
	for name, tn := range diffTunings() {
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(13))
			for _, s := range diffShapes {
				for _, d := range diffDensities {
					A := diffMat(rng, s[0], s[1], d, -Inf)
					B := diffMat(rng, s[1], s[2], d, -Inf)
					C := diffMat(rng, s[0], s[2], 0.5, -Inf)
					want := C.Clone()
					naiveMaxMin(want, A, B)
					got := C.Clone()
					MaxMinMulAdd(got, A, B)
					if !got.Equal(want) {
						t.Fatalf("MaxMinMulAdd(%v, d=%.2f) differs from naive", s, d)
					}
					checkNoNaN(t, got, "MaxMinMulAdd")
					gotSerial := C.Clone()
					MaxMinMulAddSerial(gotSerial, A, B)
					if !gotSerial.Equal(want) {
						t.Fatalf("MaxMinMulAddSerial(%v, d=%.2f) differs from naive", s, d)
					}
				}
			}
		})
	}
}

func intMatEqual(a, b IntMat) bool {
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}

func TestGemmDifferentialMinPlusPaths(t *testing.T) {
	for name, tn := range diffTunings() {
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(17))
			for _, s := range diffShapes {
				for _, d := range diffDensities {
					A := diffMat(rng, s[0], s[1], d, Inf)
					B := diffMat(rng, s[1], s[2], d, Inf)
					C := diffMat(rng, s[0], s[2], 0.5, Inf)
					nextA := diffHops(rng, s[0], s[1])
					nextC0 := diffHops(rng, s[0], s[2])
					wantC, wantN := C.Clone(), cloneIntMat(nextC0)
					naiveMinPlusPaths(wantC, A, B, wantN, nextA)
					gotC, gotN := C.Clone(), cloneIntMat(nextC0)
					MinPlusMulAddPaths(gotC, A, B, gotN, nextA)
					if !gotC.Equal(wantC) {
						t.Fatalf("MinPlusMulAddPaths(%v, d=%.2f) distances differ", s, d)
					}
					if !intMatEqual(gotN, wantN) {
						t.Fatalf("MinPlusMulAddPaths(%v, d=%.2f) hops differ", s, d)
					}
				}
			}
		})
	}
}

func TestGemmDifferentialMaxMinPaths(t *testing.T) {
	for name, tn := range diffTunings() {
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(19))
			for _, s := range diffShapes {
				for _, d := range diffDensities {
					A := diffMat(rng, s[0], s[1], d, -Inf)
					B := diffMat(rng, s[1], s[2], d, -Inf)
					C := diffMat(rng, s[0], s[2], 0.5, -Inf)
					nextA := diffHops(rng, s[0], s[1])
					nextC0 := diffHops(rng, s[0], s[2])
					wantC, wantN := C.Clone(), cloneIntMat(nextC0)
					naiveMaxMinPaths(wantC, A, B, wantN, nextA)
					gotC, gotN := C.Clone(), cloneIntMat(nextC0)
					MaxMinMulAddPaths(gotC, A, B, gotN, nextA)
					if !gotC.Equal(wantC) {
						t.Fatalf("MaxMinMulAddPaths(%v, d=%.2f) distances differ", s, d)
					}
					if !intMatEqual(gotN, wantN) {
						t.Fatalf("MaxMinMulAddPaths(%v, d=%.2f) hops differ", s, d)
					}
				}
			}
		})
	}
}

func cloneIntMat(m IntMat) IntMat {
	out := NewIntMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// TestGemmDifferentialAliased locks in the in-place panel-update
// contract on the packed and sharded paths: with the non-aliased
// operand closed (zero diagonal), the aliased call must land on exactly
// the single-pass fixpoint — packing snapshots make the intermediate
// reads differ from the streaming kernel's, but monotone relaxation
// over real path lengths gives the same result.
func TestGemmDifferentialAliased(t *testing.T) {
	for _, name := range []string{"dense", "tinytiles", "parallel-dense"} {
		tn := diffTunings()[name]
		t.Run(name, func(t *testing.T) {
			withTuning(t, tn)
			rng := rand.New(rand.NewSource(23))
			n, m := 24, 40
			D := randomDist(rng, n, 0.6)
			FloydWarshall(D) // close it
			P := randomMat(rng, n, m, 0.9)
			want := P.Clone()
			tmp := MinPlusMul(D, P)
			EwiseMinInto(want, tmp)
			got := P.Clone()
			MinPlusMulAdd(got, D, got) // C aliases B
			if !got.EqualTol(want, 1e-12) {
				t.Fatal("aliased C=B packed update differs from fixpoint")
			}
			Q := randomMat(rng, m, n, 0.9)
			wantQ := Q.Clone()
			tmpQ := MinPlusMul(Q, D)
			EwiseMinInto(wantQ, tmpQ)
			gotQ := Q.Clone()
			MinPlusMulAdd(gotQ, gotQ, D) // C aliases A
			if !gotQ.EqualTol(wantQ, 1e-12) {
				t.Fatal("aliased C=A packed update differs from fixpoint")
			}
		})
	}
}

// TestKernelCounters sanity-checks the observability layer: calls split
// exactly into dense + stream, forced paths land where they claim, and
// the dense path reports packed bytes.
func TestKernelCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	A := diffMat(rng, 16, 16, 1, Inf)
	B := diffMat(rng, 16, 16, 1, Inf)
	C := diffMat(rng, 16, 16, 0.5, Inf)

	withTuning(t, diffTunings()["dense"])
	before := ReadKernelCounters()
	MinPlusMulAdd(C.Clone(), A, B)
	d := ReadKernelCounters().Sub(before)
	if d.Calls != 1 || d.DenseCalls != 1 || d.StreamCalls != 0 {
		t.Fatalf("forced dense counted %+v", d)
	}
	if d.PackedBytes == 0 || d.FusedOps != 16*16*16 {
		t.Fatalf("dense call packed %d bytes, %d fused ops", d.PackedBytes, d.FusedOps)
	}
	if d.DenseRatio() != 1 {
		t.Fatalf("dense ratio %v, want 1", d.DenseRatio())
	}

	SetGemmTuning(diffTunings()["stream"])
	before = ReadKernelCounters()
	MinPlusMulAdd(C.Clone(), A, B)
	d = ReadKernelCounters().Sub(before)
	if d.Calls != 1 || d.StreamCalls != 1 || d.DenseCalls != 0 {
		t.Fatalf("forced stream counted %+v", d)
	}
	if d.PackedBytes != 0 {
		t.Fatalf("stream call packed %d bytes", d.PackedBytes)
	}
}

// TestSetGemmTuningClamps checks that hostile tunings are clamped, not
// trusted.
func TestSetGemmTuningClamps(t *testing.T) {
	prev := SetGemmTuning(GemmTuning{KTile: -1, JTile: 0, GemmSmall: -5})
	defer SetGemmTuning(prev)
	got := CurrentGemmTuning()
	def := DefaultGemmTuning()
	if got.KTile != def.KTile || got.JTile != def.JTile || got.GemmSmall != def.GemmSmall {
		t.Fatalf("clamping failed: %+v", got)
	}
}

// FuzzGemmDifferential fuzzes operand shapes, densities, and weights
// through the forced-dense and forced-stream engines against the naive
// reference.
func FuzzGemmDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(9), uint8(10), uint8(128))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint8(33), uint8(5), uint8(17), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, r, m, c, dens uint8) {
		rows, mid, cols := int(r%40)+1, int(m%40)+1, int(c%40)+1
		d := float64(dens) / 255
		rng := rand.New(rand.NewSource(seed))
		A := diffMat(rng, rows, mid, d, Inf)
		B := diffMat(rng, mid, cols, d, Inf)
		C := diffMat(rng, rows, cols, 0.5, Inf)
		want := C.Clone()
		naiveMinPlus(want, A, B)
		for name, tn := range diffTunings() {
			prev := SetGemmTuning(tn)
			got := C.Clone()
			MinPlusMulAdd(got, A, B)
			SetGemmTuning(prev)
			if !got.Equal(want) {
				t.Fatalf("tuning %s: adaptive differs from naive (%d×%d×%d, d=%.2f)",
					name, rows, mid, cols, d)
			}
		}
	})
}
