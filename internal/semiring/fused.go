package semiring

// Fused multi-stage supernodal kernel support.
//
// The staged engine (gemm.go) re-packs its B operand into tiles on
// every MulAdd call. A supernode elimination reuses the same operands
// many times over — the diagonal block feeds every panel update and
// each up-panel section feeds a whole row of the outer-scatter grid —
// so the staged path re-stages identical tiles O(panels²) times per
// supernode. PackedPanel packs an operand ONCE into cache-aligned
// KTile×JTile tiles, and the MulAddPacked entry points run the same
// register-blocked/SIMD micro-kernels directly against those resident
// tiles. Combined with the per-phase timers below, core's elimination
// becomes a fused Diag→Panel→Outer pipeline: the diagonal closure's
// result is packed while still warm, panel results scatter into the
// outer grid against resident tiles, and nothing round-trips through a
// fresh pack of the distance matrix.
//
// Correctness: a PackedPanel is a snapshot of B taken at PackPanel
// time and is immutable afterwards, so the packed operand MUST NOT
// alias the destination C (the apspvet aliascheck analyzer enforces
// this at the call sites). Tile geometry, visit order, and micro-
// kernels are identical to the staged dense path, and dense and stream
// agree exactly for these semirings (min/max over identical candidate
// sets — no rounding differences), so fused results are bitwise equal
// to the staged three-call path; fused_test.go holds that equality
// under fuzzing.

import (
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a supernode elimination for the
// process-wide per-phase timing counters (stats.go).
type Phase uint8

const (
	PhaseDiag Phase = iota
	PhasePanel
	PhaseOuter
)

// AddPhaseTime accumulates wall time into a phase counter. Callers
// time whole elimination stages (two clock reads per stage), not
// individual kernel calls.
func AddPhaseTime(p Phase, d time.Duration) {
	if d <= 0 {
		return
	}
	switch p {
	case PhaseDiag:
		kernelStats.diagNS.Add(uint64(d))
	case PhasePanel:
		kernelStats.panelNS.Add(uint64(d))
	case PhaseOuter:
		kernelStats.outerNS.Add(uint64(d))
	}
}

// CountElimination records one supernode elimination as fused or
// staged, making the fused-vs-staged dispatch observable in Profile
// and /metrics.
func CountElimination(fused bool) {
	if fused {
		kernelStats.fusedElims.Add(1)
	} else {
		kernelStats.stagedElims.Add(1)
	}
}

// PackedPanel is a B operand packed once for reuse across many
// MulAddPacked sweeps. Immutable after PackPanel except for the
// atomic use counter, so concurrent consumers need no locking; Release
// must only be called after every consumer has returned.
type PackedPanel struct {
	src  Mat     // original operand, kept for the stream fallback
	zero float64 // the semiring's "no path" value
	// Geometry is snapshotted at pack time: the process-wide tuning may
	// be swapped between pack and use, and the sweep must match the
	// layout the tiles were packed with.
	kt, jt int
	njb    int
	off    []int // tile offsets, row-major by (kb, jb); len nkb*njb+1
	buf    []float64
	bytes  uint64
	uses   atomic.Uint64
}

// PackPanel packs B into KTile×JTile tiles for the fused pipeline.
// When B samples sparser than FusedMinFinite the panel stays in
// "stream mode": no scratch is taken and consumers run the Inf-skip
// streaming kernel against the original operand — packing a panel of
// mostly-Inf rows would pay full staging cost for work the stream
// kernel skips.
//
// zero is the semiring's annihilator (+Inf for min-plus, -Inf for
// max-min); use Kernels.PackPanel to supply it from a kernel set.
func PackPanel(B Mat, zero float64) *PackedPanel {
	t := CurrentGemmTuning()
	p := &PackedPanel{src: B, zero: zero, kt: t.KTile, jt: t.JTile}
	if B.Rows == 0 || B.Cols == 0 || sampleFinite(B, zero) < t.FusedMinFinite {
		return p
	}
	nkb := (B.Rows + p.kt - 1) / p.kt
	njb := (B.Cols + p.jt - 1) / p.jt
	p.njb = njb
	p.off = make([]int, nkb*njb+1)
	total := 0
	for kb := 0; kb < nkb; kb++ {
		kh := min(p.kt, B.Rows-kb*p.kt)
		for jb := 0; jb < njb; jb++ {
			p.off[kb*njb+jb] = total
			total += kh * min(p.jt, B.Cols-jb*p.jt)
		}
	}
	p.off[nkb*njb] = total
	p.buf = getPackBuf(total)
	for kb := 0; kb < nkb; kb++ {
		k0 := kb * p.kt
		kh := min(p.kt, B.Rows-k0)
		for jb := 0; jb < njb; jb++ {
			j0 := jb * p.jt
			jh := min(p.jt, B.Cols-j0)
			o := p.off[kb*njb+jb]
			packTile(p.buf[o:o+kh*jh], B, k0, kh, j0, jh)
		}
	}
	p.bytes = uint64(total) * 8
	return p
}

// Packed reports whether the panel was eagerly packed (dense mode)
// rather than left in stream mode.
func (p *PackedPanel) Packed() bool { return p.buf != nil }

// Release returns the packed scratch to the pool. The panel must not
// be used after Release.
func (p *PackedPanel) Release() {
	if p.buf != nil {
		putPackBuf(p.buf)
		p.buf = nil
	}
}

// tile returns the packed kh×jh tile at block coordinates (kb, jb).
func (p *PackedPanel) tile(kb, jb, kh, jh int) []float64 {
	o := p.off[kb*p.njb+jb]
	return p.buf[o : o+kh*jh]
}

// dense decides the consumer-side dispatch: sweep the resident tiles
// when the panel is packed and A samples dense enough, else stream.
// There is no DenseMinOps floor here — the pack is already paid, so
// even a small A sweep against resident tiles beats re-staging.
func (p *PackedPanel) dense(A Mat) bool {
	return p.buf != nil && sampleFinite(A, p.zero) >= CurrentGemmTuning().DenseMinFinite
}

// countUse bumps the reuse counter: every dense sweep after the first
// re-reads tiles the staged path would have re-packed.
func (p *PackedPanel) countUse() {
	if p.uses.Add(1) > 1 {
		kernelStats.packedReuseBytes.Add(p.bytes)
	}
}

func packedShapeCheck(C, A Mat, P *PackedPanel, name string) {
	if A.Rows != C.Rows || A.Cols != P.src.Rows || P.src.Cols != C.Cols {
		panic("semiring: " + name + " shape mismatch")
	}
}

// fusedRowBlock is the C/A row-panel height of the packed sweeps. The
// staged dense path interleaves packing with the sweep, so it walks all
// of C once per k-block; with the tiles already resident the fused
// sweep can instead finish a whole row panel across every (kb, jb)
// tile before advancing, keeping the C and A panels L2-resident while
// the packed tiles stream. Row blocking only reorders WHICH (i, j)
// cells are visited when — each cell still sees its k candidates in
// ascending kb order — so results stay bitwise identical.
const fusedRowBlock = 128

// rowBlocks invokes fn over successive (i0, ih) row panels.
func rowBlocks(rows int, fn func(i0, ih int)) {
	for i0 := 0; i0 < rows; i0 += fusedRowBlock {
		fn(i0, min(fusedRowBlock, rows-i0))
	}
}

// MinPlusMulAddPacked computes C = C ⊕ (A ⊗ P) over (min, +) against a
// pre-packed B operand. Serial by design: fused callers own the
// parallel decomposition (one packed panel feeds many concurrent
// destination sweeps). C may alias A under the usual closed
// zero-diagonal contract; C must not alias the packed operand.
func MinPlusMulAddPacked(C, A Mat, P *PackedPanel) {
	packedShapeCheck(C, A, P, "MinPlusMulAddPacked")
	kernelStats.calls.Add(1)
	if !P.dense(A) {
		kernelStats.stream.Add(1)
		minPlusStream(C, A, P.src, CurrentGemmTuning())
		return
	}
	kernelStats.dense.Add(1)
	P.countUse()
	rowBlocks(A.Rows, func(i0, ih int) {
		Ci, Ai := C.View(i0, 0, ih, C.Cols), A.View(i0, 0, ih, A.Cols)
		for kb := 0; kb*P.kt < A.Cols; kb++ {
			k0 := kb * P.kt
			kh := min(P.kt, A.Cols-k0)
			for jb := 0; jb*P.jt < C.Cols; jb++ {
				j0 := jb * P.jt
				jh := min(P.jt, C.Cols-j0)
				minPlusTile(Ci, Ai, P.tile(kb, jb, kh, jh), k0, kh, j0, jh)
			}
		}
	})
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// MaxMinMulAddPacked is MinPlusMulAddPacked over the bottleneck
// (max, min) semiring.
func MaxMinMulAddPacked(C, A Mat, P *PackedPanel) {
	packedShapeCheck(C, A, P, "MaxMinMulAddPacked")
	kernelStats.calls.Add(1)
	if !P.dense(A) {
		kernelStats.stream.Add(1)
		maxMinStream(C, A, P.src)
		return
	}
	kernelStats.dense.Add(1)
	P.countUse()
	rowBlocks(A.Rows, func(i0, ih int) {
		Ci, Ai := C.View(i0, 0, ih, C.Cols), A.View(i0, 0, ih, A.Cols)
		for kb := 0; kb*P.kt < A.Cols; kb++ {
			k0 := kb * P.kt
			kh := min(P.kt, A.Cols-k0)
			for jb := 0; jb*P.jt < C.Cols; jb++ {
				j0 := jb * P.jt
				jh := min(P.jt, C.Cols-j0)
				maxMinTile(Ci, Ai, P.tile(kb, jb, kh, jh), k0, kh, j0, jh)
			}
		}
	})
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// MinPlusMulAddPathsPacked is the next-hop-carrying variant: on strict
// improvement via k, nextC[i][j] inherits nextA[i][k] (same k-ascending
// tie-break as every other Paths kernel, so results are bitwise and
// hop-wise identical to the staged path).
func MinPlusMulAddPathsPacked(C, A Mat, P *PackedPanel, nextC, nextA IntMat) {
	packedShapeCheck(C, A, P, "MinPlusMulAddPathsPacked")
	if nextC.Rows != C.Rows || nextC.Cols != C.Cols || nextA.Rows != A.Rows || nextA.Cols != A.Cols {
		panic("semiring: MinPlusMulAddPathsPacked next-hop shape mismatch")
	}
	kernelStats.calls.Add(1)
	if !P.dense(A) {
		kernelStats.stream.Add(1)
		minPlusPathsStream(C, A, P.src, nextC, nextA)
		return
	}
	kernelStats.dense.Add(1)
	P.countUse()
	rowBlocks(A.Rows, func(i0, ih int) {
		Ci, Ai := C.View(i0, 0, ih, C.Cols), A.View(i0, 0, ih, A.Cols)
		nCi, nAi := nextC.View(i0, 0, ih, nextC.Cols), nextA.View(i0, 0, ih, nextA.Cols)
		for kb := 0; kb*P.kt < A.Cols; kb++ {
			k0 := kb * P.kt
			kh := min(P.kt, A.Cols-k0)
			for jb := 0; jb*P.jt < C.Cols; jb++ {
				j0 := jb * P.jt
				jh := min(P.jt, C.Cols-j0)
				minPlusPathsTile(Ci, Ai, nCi, nAi, P.tile(kb, jb, kh, jh), k0, kh, j0, jh)
			}
		}
	})
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}

// MaxMinMulAddPathsPacked is the bottleneck next-hop variant.
func MaxMinMulAddPathsPacked(C, A Mat, P *PackedPanel, nextC, nextA IntMat) {
	packedShapeCheck(C, A, P, "MaxMinMulAddPathsPacked")
	if nextC.Rows != C.Rows || nextC.Cols != C.Cols || nextA.Rows != A.Rows || nextA.Cols != A.Cols {
		panic("semiring: MaxMinMulAddPathsPacked next-hop shape mismatch")
	}
	kernelStats.calls.Add(1)
	if !P.dense(A) {
		kernelStats.stream.Add(1)
		maxMinPathsStream(C, A, P.src, nextC, nextA)
		return
	}
	kernelStats.dense.Add(1)
	P.countUse()
	rowBlocks(A.Rows, func(i0, ih int) {
		Ci, Ai := C.View(i0, 0, ih, C.Cols), A.View(i0, 0, ih, A.Cols)
		nCi, nAi := nextC.View(i0, 0, ih, nextC.Cols), nextA.View(i0, 0, ih, nextA.Cols)
		for kb := 0; kb*P.kt < A.Cols; kb++ {
			k0 := kb * P.kt
			kh := min(P.kt, A.Cols-k0)
			for jb := 0; jb*P.jt < C.Cols; jb++ {
				j0 := jb * P.jt
				jh := min(P.jt, C.Cols-j0)
				maxMinPathsTile(Ci, Ai, nCi, nAi, P.tile(kb, jb, kh, jh), k0, kh, j0, jh)
			}
		}
	})
	kernelStats.fusedOps.Add(uint64(A.Rows) * uint64(A.Cols) * uint64(C.Cols))
}
