package semiring

import (
	"math/rand"
	"testing"
)

func TestIntMatBasics(t *testing.T) {
	m := NewIntMat(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != -1 {
				t.Fatal("IntMat must initialize to -1")
			}
		}
	}
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At broken")
	}
	v := m.View(1, 1, 2, 3)
	if v.At(0, 1) != 42 {
		t.Fatal("view must alias")
	}
	v.Set(1, 2, 7)
	if m.At(2, 3) != 7 {
		t.Fatal("view write must alias")
	}
	if len(m.Row(1)) != 4 {
		t.Fatal("row length wrong")
	}
}

func TestIntMatViewBounds(t *testing.T) {
	m := NewIntMat(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view must panic")
		}
	}()
	m.View(1, 1, 2, 2)
}

func TestInitNextHops(t *testing.T) {
	D := NewInfMat(3, 3)
	D.Set(0, 0, 0)
	D.Set(1, 1, 0)
	D.Set(2, 2, 0)
	D.Set(0, 1, 5)
	next := NewIntMat(3, 3)
	InitNextHops(D, next)
	if next.At(0, 1) != 1 {
		t.Error("edge hop should be the target")
	}
	if next.At(0, 2) != -1 {
		t.Error("non-edge hop should be -1")
	}
	if next.At(1, 1) != 1 {
		t.Error("diagonal hop should be self")
	}
}

func TestMinPlusMulAddPathsMatchesPlain(t *testing.T) {
	// Distances must be identical with and without hop tracking.
	rng := rand.New(rand.NewSource(31))
	A := randomMat(rng, 12, 15, 0.3)
	B := randomMat(rng, 15, 9, 0.3)
	C1 := randomMat(rng, 12, 9, 0.6)
	C2 := C1.Clone()
	nc := NewIntMat(12, 9)
	na := NewIntMat(12, 15)
	MinPlusMulAdd(C1, A, B)
	MinPlusMulAddPaths(C2, A, B, nc, na)
	if !C1.Equal(C2) {
		t.Fatal("path tracking changed distances")
	}
}

func TestPermuteIntMat(t *testing.T) {
	n := 4
	m := NewIntMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, int32(j)) // hop stored as a vertex id
		}
	}
	perm := []int{2, 0, 3, 1}
	idMap := []int{1, 3, 0, 2} // inverse of perm
	dst := NewIntMat(n, n)
	PermuteIntMat(dst, m, perm, idMap)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// source value was perm[j]; remapped through idMap → j.
			if dst.At(i, j) != int32(idMap[perm[j]]) {
				t.Fatalf("PermuteIntMat wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestMinPlusMatVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	A := randomMat(rng, 6, 9, 0.2)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64() * 5
	}
	y := make([]float64, 6)
	for i := range y {
		y[i] = Inf
	}
	MinPlusMatVecAdd(y, A, x)
	for i := 0; i < 6; i++ {
		best := Inf
		for k := 0; k < 9; k++ {
			if v := A.At(i, k) + x[k]; v < best {
				best = v
			}
		}
		if y[i] != best {
			t.Fatalf("MatVec mismatch at %d", i)
		}
	}
}

func TestFloydWarshallPathsDistancesMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{1, 5, 30} {
		A := randomDist(rng, n, 0.4)
		want := A.Clone()
		FloydWarshall(want)
		got := A.Clone()
		next := NewIntMat(n, n)
		InitNextHops(got, next)
		FloydWarshallPaths(got, next)
		if !got.EqualTol(want, 1e-12) {
			t.Fatalf("n=%d: paths FW changed distances", n)
		}
	}
}

func TestParallelBlockedFWPathsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 60
	A := randomDist(rng, n, 0.4)
	want := A.Clone()
	FloydWarshall(want)
	got := A.Clone()
	next := NewIntMat(n, n)
	InitNextHops(got, next)
	ParallelBlockedFloydWarshallPaths(got, next, 16, 4)
	if !got.EqualTol(want, 1e-12) {
		t.Fatal("parallel blocked paths FW changed distances")
	}
	// Hop chains valid: terminate within n hops for reachable pairs.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || got.At(u, v) == Inf {
				continue
			}
			cur, hops := u, 0
			for cur != v {
				nx := next.At(cur, v)
				if nx < 0 || hops > n {
					t.Fatalf("broken chain at (%d,%d)", u, v)
				}
				cur = int(nx)
				hops++
			}
		}
	}
}

func TestFloydWarshallStepEquivalence(t *testing.T) {
	// n applications of the single-step function equal one full FW.
	rng := rand.New(rand.NewSource(35))
	n := 20
	A := randomDist(rng, n, 0.5)
	want := A.Clone()
	FloydWarshall(want)
	got := A.Clone()
	for k := 0; k < n; k++ {
		FloydWarshallStep(got, k)
	}
	if !got.EqualTol(want, 1e-12) {
		t.Fatal("stepwise FW differs from full FW")
	}
}
