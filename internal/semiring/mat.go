// Package semiring implements dense kernels over the tropical (min,+)
// semiring: strided matrix views, min-plus matrix multiplication
// ("SemiringGemm" in the paper), and dense Floyd-Warshall kernels.
//
// In the tropical semiring the additive identity is +Inf (an undiscovered
// path) and the multiplicative identity is 0 (an empty path), so a matrix
// "multiply-add" C = C ⊕ A ⊗ B computes, for every (i,j), the shortest
// path from i to j through one intermediate block of vertices.
package semiring

import (
	"fmt"
	"math"
)

// Inf is the additive identity of the tropical semiring: the distance
// between vertices with no discovered path.
var Inf = math.Inf(1)

// Plus is the semiring addition ⊕ (min).
func Plus(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

// Times is the semiring multiplication ⊗ (+). It is saturating: the sum of
// anything with Inf is Inf (IEEE float64 addition already guarantees this).
func Times(x, y float64) float64 { return x + y }

// Mat is a dense row-major matrix view. A Mat may alias a sub-block of a
// larger matrix; Stride is the distance in elements between the starts of
// consecutive rows.
type Mat struct {
	Data   []float64
	Stride int
	Rows   int
	Cols   int
}

// NewMat allocates a Rows×Cols matrix initialized to zero.
func NewMat(rows, cols int) Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("semiring: invalid dimensions %d×%d", rows, cols))
	}
	return Mat{Data: make([]float64, rows*cols), Stride: cols, Rows: rows, Cols: cols}
}

// NewInfMat allocates a Rows×Cols matrix filled with Inf (the semiring zero).
func NewInfMat(rows, cols int) Mat {
	m := NewMat(rows, cols)
	m.Fill(Inf)
	return m
}

// View returns the r×c sub-block of m whose top-left corner is (i, j).
// The view aliases m's storage.
func (m Mat) View(i, j, r, c int) Mat {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("semiring: view [%d:%d, %d:%d] out of range of %d×%d",
			i, i+r, j, j+c, m.Rows, m.Cols))
	}
	off := i*m.Stride + j
	end := off
	if r > 0 && c > 0 {
		end = off + (r-1)*m.Stride + c
	}
	return Mat{Data: m.Data[off:end:end], Stride: m.Stride, Rows: r, Cols: c}
}

// At returns the element at row i, column j.
func (m Mat) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set stores v at row i, column j.
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice aliasing m's storage.
func (m Mat) Row(i int) []float64 {
	off := i * m.Stride
	return m.Data[off : off+m.Cols : off+m.Cols]
}

// Fill sets every element of m to v.
func (m Mat) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Copy copies src into m. The shapes must match.
func (m Mat) Copy(src Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("semiring: copy shape mismatch %d×%d vs %d×%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Clone returns a freshly allocated copy of m with a compact stride.
func (m Mat) Clone() Mat {
	out := NewMat(m.Rows, m.Cols)
	out.Copy(m)
	return out
}

// Equal reports whether m and b have the same shape and identical elements.
// Inf entries compare equal to each other.
func (m Mat) Equal(b Mat) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			//lint:ignore nanguard Equal is deliberately bitwise: the differential tests demand exact agreement, and NaN-never-equal is the desired verdict
			if ra[j] != rb[j] && !(math.IsInf(ra[j], 1) && math.IsInf(rb[j], 1)) {
				return false
			}
		}
	}
	return true
}

// EqualTol reports whether m and b have the same shape and elements equal
// within absolute tolerance tol. Inf entries must match exactly.
func (m Mat) EqualTol(b Mat, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			x, y := ra[j], rb[j]
			if math.IsInf(x, 1) || math.IsInf(y, 1) {
				if math.IsInf(x, 1) != math.IsInf(y, 1) {
					return false
				}
				continue
			}
			if math.Abs(x-y) > tol {
				return false
			}
		}
	}
	return true
}

// IsSymmetric reports whether the square matrix m equals its transpose.
func (m Mat) IsSymmetric() bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			x, y := m.At(i, j), m.At(j, i)
			//lint:ignore nanguard symmetry is a bitwise structural check, same contract as Equal
			if x != y && !(math.IsInf(x, 1) && math.IsInf(y, 1)) {
				return false
			}
		}
	}
	return true
}

// CountFinite returns the number of non-Inf entries in m.
func (m Mat) CountFinite() int {
	n := 0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if !math.IsInf(v, 1) {
				n++
			}
		}
	}
	return n
}

// Permute writes into dst the matrix m with rows and columns permuted so
// that dst[i][j] = m[perm[i]][perm[j]]. dst must be square with the same
// dimension as m and must not alias it.
func Permute(dst, m Mat, perm []int) {
	n := m.Rows
	if m.Cols != n || dst.Rows != n || dst.Cols != n || len(perm) != n {
		panic("semiring: Permute shape mismatch")
	}
	for i := 0; i < n; i++ {
		drow := dst.Row(i)
		srow := m.Row(perm[i])
		for j := 0; j < n; j++ {
			drow[j] = srow[perm[j]]
		}
	}
}
