//go:build amd64

package semiring

// AVX2 acceleration of the dense min-plus tile sweep. The paper's
// SemiringGemm is hand-tuned AVX2 (§5.1.2: 10.2 Gflop/s per core, 28%
// of machine peak); pure scalar Go saturates the FP ports at roughly
// one fused add-min per cycle, so matching the paper's kernel-bound
// shape requires vectorizing the inner loop the same way. The assembly
// kernel (gemm_amd64.s) processes one C row against a packed k-pair of
// B rows, 8 lanes per iteration (2 YMM vectors), with an unconditional
// blended store: min(c, x+bv, y+bw). There is no NaN hazard — operands
// are finite or +Inf and never opposite infinities, so MINPD's operand
// ordering is immaterial.
//
// useAVX2 is set once at init via CPUID (checking OSXSAVE + AVX + AVX2
// and XCR0 state enablement); on older machines the scalar
// register-blocked quad kernel in microkernel.go runs instead.

var useAVX2 = cpuidAVX2()

// cpuidAVX2 reports whether the CPU and OS support AVX2 (implemented in
// gemm_amd64.s).
func cpuidAVX2() bool

// minPlusKPairAVX2 computes c[j] = min(c[j], x+bv[j], y+bw[j]) for
// j < len(c). len(bv) and len(bw) must be ≥ len(c); len(c) must be a
// multiple of 8 (the Go caller peels the tail). Implemented in
// gemm_amd64.s.
func minPlusKPairAVX2(c, bv, bw []float64, x, y float64)

// minPlusTileVec is the vectorized form of minPlusTile. It returns
// false when the hardware lacks AVX2 or the tile is too narrow to be
// worth the call overhead, leaving the scalar kernel to run.
func minPlusTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	if !useAVX2 || jh < 16 {
		return false
	}
	j8 := jh &^ 7
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		for k := 0; k+1 < kh; k += 2 {
			x, y := arow[k], arow[k+1]
			if x == Inf && y == Inf {
				continue // neither k can improve any c
			}
			bv := pk[k*jh : k*jh+jh]
			bw := pk[(k+1)*jh : (k+1)*jh+jh]
			minPlusKPairAVX2(crow[:j8], bv, bw, x, y)
			for j := j8; j < jh; j++ {
				if v := min(x+bv[j], y+bw[j]); v < crow[j] {
					crow[j] = v
				}
			}
		}
		if kh&1 == 1 {
			x := arow[kh-1]
			if x == Inf {
				continue
			}
			bv := pk[(kh-1)*jh : (kh-1)*jh+jh]
			// Reuse the pair kernel with a +Inf second lane: Inf+bw
			// never improves c, so the result is the single-k update.
			minPlusKPairAVX2(crow[:j8], bv, bv, x, Inf)
			for j := j8; j < jh; j++ {
				if v := x + bv[j]; v < crow[j] {
					crow[j] = v
				}
			}
		}
	}
	return true
}
