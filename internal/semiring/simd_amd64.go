//go:build amd64

package semiring

// SIMD acceleration of the dense tile sweeps. The paper's SemiringGemm
// is hand-tuned AVX2 (§5.1.2: 10.2 Gflop/s per core, 28% of machine
// peak); pure scalar Go saturates the FP ports at roughly one fused
// add-min per cycle, so matching the paper's kernel-bound shape
// requires vectorizing the inner loop the same way.
//
// The kernels (gemm_amd64.s) are ACCUMULATOR-style: for one C row and
// one chunk of columns, C is loaded into vector registers once, the
// whole packed k-range streams through add-min (or min-max) updates
// against the registers, and C stores once at the end. Relative to the
// earlier per-k-pair kernel this removes a C load + store per k pair —
// the dominant traffic on dense panels — and is where the fused
// pipeline's headline speedup comes from. Lane widths:
//
//	AVX-512: 32 lanes per call (4 ZMM accumulators), masked ≤8-lane
//	         tails (K-register masks, no scalar peel), and masked
//	         index-carrying Paths kernels: VCMPPD writes the improve
//	         mask, values take VMINPD/VMAXPD, and a merge-masked
//	         VPBROADCASTD blends the next-hop index into the carried
//	         hop vector on exactly the improved lanes.
//	AVX2:    16 lanes per call (4 YMM accumulators), scalar tails.
//
// Every kernel skips k entirely when a[k] is the semiring zero (one
// scalar compare against 4–8 vector ops), and the Go wrappers skip
// all-zero A rows before calling, so the dense path keeps the
// streaming kernel's Inf fast path instead of grinding through
// no-path rows.
//
// There is no NaN hazard: operands are finite or the semiring's own
// infinity and never opposite infinities, so MINPD/MAXPD operand-order
// semantics don't matter, and VCMPPD's ordered-compare never sees a
// NaN. Improvements are strict (LT_OS / GT_OS) with k ascending, so
// the Paths kernels record bitwise the hops the scalar reference
// records.
//
// hasAVX2/hasAVX512 are the immutable hardware capabilities probed
// once at init via CPUID (OSXSAVE + AVX + XCR0 state enablement, then
// the feature bits; AVX-512 requires F+DQ+BW+VL and the OS enabling
// opmask/ZMM state). useAVX2/useAVX512 are the live dispatch switches:
// normally equal to the hardware caps, clamped by SetMaxVectorISA for
// benchmarks and differential tests.

var (
	hasAVX2   = cpuidAVX2()
	hasAVX512 = cpuidAVX512()
	useAVX2   = hasAVX2
	useAVX512 = hasAVX512
)

// cpuidAVX2 reports CPU+OS support for AVX2 (gemm_amd64.s).
func cpuidAVX2() bool

// cpuidAVX512 reports CPU+OS support for AVX-512 F+DQ+BW+VL with
// opmask/ZMM state enabled (gemm_amd64.s).
func cpuidAVX512() bool

// Accumulator kernels (gemm_amd64.s). Each computes, for one C row
// chunk c and packed tile rows pk (row k at pk[k*stride:]),
// c[j] = ⊕_k (a[k] ⊗ pk[k*stride+j]) folded into c, with c resident in
// registers across the whole k sweep. len(a) is the k count; the
// 32/16-lane variants require len(c) ≥ lanes and update exactly that
// many lanes; the masked variants update len(c) ≤ 8 lanes.
func minPlusAccum32AVX512(c, a, pk []float64, stride int)
func minPlusAccumMaskedAVX512(c, a, pk []float64, stride int)

// minPlusAccum2x32AVX512 folds one k sweep into TWO 32-lane C rows at
// once: each packed tile row is loaded once and reused for both rows,
// halving tile read traffic (the single-row kernel's bound on dense
// panels) and doubling the independent min dependency chains.
func minPlusAccum2x32AVX512(c0, c1, a0, a1, pk []float64, stride int)
func maxMinAccum32AVX512(c, a, pk []float64, stride int)
func maxMinAccumMaskedAVX512(c, a, pk []float64, stride int)
func minPlusAccum16AVX2(c, a, pk []float64, stride int)
func maxMinAccum16AVX2(c, a, pk []float64, stride int)

// Index-carrying variants: nc/na are the next-hop lanes matching c/a;
// on a strict improvement via k, nc[j] takes na[k] (blend-select on
// the compare mask).
func minPlusPathsAccumMaskedAVX512(c []float64, nc []int32, a []float64, na []int32, pk []float64, stride int)
func maxMinPathsAccumMaskedAVX512(c []float64, nc []int32, a []float64, na []int32, pk []float64, stride int)

// rowAllZero reports whether every entry equals the semiring zero — the
// row-level Inf fast path of the vector kernels (a kh-element scan
// against kh·jh vector work).
func rowAllZero(row []float64, zero float64) bool {
	for _, v := range row {
		if v != zero {
			return false
		}
	}
	return true
}

// minPlusRowAVX512 runs one C row's full j sweep: 32-lane body plus
// masked tail.
func minPlusRowAVX512(crow, arow, pk []float64, jh int) {
	j := 0
	for ; j+32 <= jh; j += 32 {
		minPlusAccum32AVX512(crow[j:j+32], arow, pk[j:], jh)
	}
	for ; j < jh; j += 8 {
		w := min(8, jh-j)
		minPlusAccumMaskedAVX512(crow[j:j+w], arow, pk[j:], jh)
	}
}

// minPlusTileVec is the vectorized form of minPlusTile. It returns
// false when the hardware lacks AVX2/AVX-512 or the tile is too narrow
// to be worth the call overhead, leaving the scalar kernel to run.
func minPlusTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	switch {
	case useAVX512 && jh >= 8:
		// Rows go through the k sweep in pairs so each packed tile row
		// is loaded once per two C rows; a pair with one all-Inf row
		// falls back to the single-row kernel for the other.
		i := 0
		for ; i+1 < A.Rows; i += 2 {
			a0 := A.Row(i)[k0 : k0+kh]
			a1 := A.Row(i + 1)[k0 : k0+kh]
			z0 := rowAllZero(a0, Inf)
			z1 := rowAllZero(a1, Inf)
			switch {
			case z0 && z1:
			case z0:
				minPlusRowAVX512(C.Row(i + 1)[j0:j0+jh], a1, pk, jh)
			case z1:
				minPlusRowAVX512(C.Row(i)[j0:j0+jh], a0, pk, jh)
			default:
				c0 := C.Row(i)[j0 : j0+jh]
				c1 := C.Row(i + 1)[j0 : j0+jh]
				j := 0
				for ; j+32 <= jh; j += 32 {
					minPlusAccum2x32AVX512(c0[j:j+32], c1[j:j+32], a0, a1, pk[j:], jh)
				}
				for ; j < jh; j += 8 {
					w := min(8, jh-j)
					minPlusAccumMaskedAVX512(c0[j:j+w], a0, pk[j:], jh)
					minPlusAccumMaskedAVX512(c1[j:j+w], a1, pk[j:], jh)
				}
			}
		}
		if i < A.Rows {
			arow := A.Row(i)[k0 : k0+kh]
			if !rowAllZero(arow, Inf) {
				minPlusRowAVX512(C.Row(i)[j0:j0+jh], arow, pk, jh)
			}
		}
		return true
	case useAVX2 && jh >= 16:
		for i := 0; i < A.Rows; i++ {
			arow := A.Row(i)[k0 : k0+kh]
			if rowAllZero(arow, Inf) {
				continue
			}
			crow := C.Row(i)[j0 : j0+jh]
			j := 0
			for ; j+16 <= jh; j += 16 {
				minPlusAccum16AVX2(crow[j:j+16], arow, pk[j:], jh)
			}
			for ; j < jh; j++ {
				cj := crow[j]
				for k, a := range arow {
					// a == Inf gives Inf + pk = Inf, never < cj: no branch needed.
					if v := a + pk[k*jh+j]; v < cj {
						cj = v
					}
				}
				crow[j] = cj
			}
		}
		return true
	}
	return false
}

// maxMinTileVec is the vectorized form of maxMinTile.
func maxMinTileVec(C, A Mat, pk []float64, k0, kh, j0, jh int) bool {
	negInf := -Inf
	switch {
	case useAVX512 && jh >= 8:
		for i := 0; i < A.Rows; i++ {
			arow := A.Row(i)[k0 : k0+kh]
			if rowAllZero(arow, negInf) {
				continue
			}
			crow := C.Row(i)[j0 : j0+jh]
			j := 0
			for ; j+32 <= jh; j += 32 {
				maxMinAccum32AVX512(crow[j:j+32], arow, pk[j:], jh)
			}
			for ; j < jh; j += 8 {
				w := min(8, jh-j)
				maxMinAccumMaskedAVX512(crow[j:j+w], arow, pk[j:], jh)
			}
		}
		return true
	case useAVX2 && jh >= 16:
		for i := 0; i < A.Rows; i++ {
			arow := A.Row(i)[k0 : k0+kh]
			if rowAllZero(arow, negInf) {
				continue
			}
			crow := C.Row(i)[j0 : j0+jh]
			j := 0
			for ; j+16 <= jh; j += 16 {
				maxMinAccum16AVX2(crow[j:j+16], arow, pk[j:], jh)
			}
			for ; j < jh; j++ {
				cj := crow[j]
				for k, a := range arow {
					v := pk[k*jh+j]
					if a < v {
						v = a
					}
					if v > cj {
						cj = v
					}
				}
				crow[j] = cj
			}
		}
		return true
	}
	return false
}

// minPlusPathsTileVec is the vectorized index-carrying form of
// minPlusPathsTile (AVX-512 only: the hop blend needs opmask merge).
func minPlusPathsTileVec(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) bool {
	if !useAVX512 || jh < 8 {
		return false
	}
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		if rowAllZero(arow, Inf) {
			continue
		}
		narow := nextA.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		ncrow := nextC.Row(i)[j0 : j0+jh]
		for j := 0; j < jh; j += 8 {
			w := min(8, jh-j)
			minPlusPathsAccumMaskedAVX512(crow[j:j+w], ncrow[j:j+w], arow, narow, pk[j:], jh)
		}
	}
	return true
}

// maxMinPathsTileVec is the bottleneck index-carrying vector kernel.
func maxMinPathsTileVec(C, A Mat, nextC, nextA IntMat, pk []float64, k0, kh, j0, jh int) bool {
	if !useAVX512 || jh < 8 {
		return false
	}
	negInf := -Inf
	for i := 0; i < A.Rows; i++ {
		arow := A.Row(i)[k0 : k0+kh]
		if rowAllZero(arow, negInf) {
			continue
		}
		narow := nextA.Row(i)[k0 : k0+kh]
		crow := C.Row(i)[j0 : j0+jh]
		ncrow := nextC.Row(i)[j0 : j0+jh]
		for j := 0; j < jh; j += 8 {
			w := min(8, jh-j)
			maxMinPathsAccumMaskedAVX512(crow[j:j+w], ncrow[j:j+w], arow, narow, pk[j:], jh)
		}
	}
	return true
}

// VectorISA reports the active SIMD dispatch level: "avx512", "avx2",
// or "scalar".
func VectorISA() string {
	switch {
	case useAVX512:
		return "avx512"
	case useAVX2:
		return "avx2"
	}
	return "scalar"
}

// SetMaxVectorISA clamps the SIMD dispatch to at most level ("avx512",
// "avx2", or "scalar"), bounded by what the hardware supports, and
// returns the previous level. For benchmarks and differential tests
// (ablating AVX-512 down to the PR 4 AVX2 path and to scalar); not
// safe to call concurrently with running kernels.
func SetMaxVectorISA(level string) string {
	prev := VectorISA()
	useAVX2 = hasAVX2 && (level == "avx2" || level == "avx512")
	useAVX512 = hasAVX512 && level == "avx512"
	return prev
}

// CPUFeatures lists the ISA features the kernel dispatch detected, for
// bench metadata (BENCH_*.json comparability across hosts).
func CPUFeatures() []string {
	feats := []string{"sse2"}
	if hasAVX2 {
		feats = append(feats, "avx2")
	}
	if hasAVX512 {
		feats = append(feats, "avx512f", "avx512dq", "avx512bw", "avx512vl")
	}
	return feats
}
