//go:build amd64

#include "textflag.h"

// func cpuidAVX2() bool
//
// AVX2 is usable when CPUID.1:ECX reports OSXSAVE and AVX, XCR0 has the
// SSE and AVX state bits enabled by the OS, and CPUID.7.0:EBX reports
// AVX2.
TEXT ·cpuidAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX  // OSXSAVE | AVX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX                // XCR0: XMM | YMM state
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX           // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func minPlusKPairAVX2(c, bv, bw []float64, x, y float64)
//
// c[j] = min(c[j], x+bv[j], y+bw[j]) for j < len(c); len(c) must be a
// multiple of 8. Two YMM vectors per iteration keep eight independent
// add-min chains in flight; the store is unconditional (a blended min),
// which in vector form is cheaper than any masked-store dance. No NaNs
// can occur (finite or +Inf inputs, never opposite infinities), so
// MINPD operand-order semantics don't matter.
TEXT ·minPlusKPairAVX2(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVQ bv_base+24(FP), SI
	MOVQ bw_base+48(FP), DX
	VBROADCASTSD x+72(FP), Y0
	VBROADCASTSD y+80(FP), Y1
	XORQ BX, BX
loop8:
	CMPQ BX, CX
	JGE  done
	VMOVUPD (SI)(BX*8), Y2
	VMOVUPD 32(SI)(BX*8), Y3
	VADDPD  Y0, Y2, Y2
	VADDPD  Y0, Y3, Y3
	VMOVUPD (DX)(BX*8), Y4
	VMOVUPD 32(DX)(BX*8), Y5
	VADDPD  Y1, Y4, Y4
	VADDPD  Y1, Y5, Y5
	VMINPD  Y4, Y2, Y2
	VMINPD  Y5, Y3, Y3
	VMOVUPD (DI)(BX*8), Y6
	VMOVUPD 32(DI)(BX*8), Y7
	VMINPD  Y6, Y2, Y2
	VMINPD  Y7, Y3, Y3
	VMOVUPD Y2, (DI)(BX*8)
	VMOVUPD Y3, 32(DI)(BX*8)
	ADDQ $8, BX
	JMP  loop8
done:
	VZEROUPPER
	RET
