//go:build amd64

#include "textflag.h"

// func cpuidAVX2() bool
//
// AVX2 is usable when CPUID.1:ECX reports OSXSAVE and AVX, XCR0 has the
// SSE and AVX state bits enabled by the OS, and CPUID.7.0:EBX reports
// AVX2.
TEXT ·cpuidAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX  // OSXSAVE | AVX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX                // XCR0: XMM | YMM state
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX           // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func cpuidAVX512() bool
//
// The 16-lane kernels need AVX-512 F (foundation), DQ (KMOVB), BW+VL
// (256-bit masked integer ops for the hop carry), and the OS must have
// enabled XMM|YMM|opmask|ZMM_Hi256|Hi16_ZMM state in XCR0 (0xE6).
TEXT ·cpuidAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX  // OSXSAVE | AVX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  no512
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX             // XCR0: XMM|YMM|opmask|ZMM_Hi256|Hi16_ZMM
	CMPL AX, $0xE6
	JNE  no512
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL $(1<<16 | 1<<17 | 1<<30 | 1<<31), DX  // F | DQ | BW | VL
	ANDL DX, BX
	CMPL BX, DX
	JNE  no512
	MOVB $1, ret+0(FP)
	RET
no512:
	MOVB $0, ret+0(FP)
	RET

// Accumulator kernels. Common shape: DI = &c[0], SI = &a[0], CX = len(a)
// (the k count), DX = &pk[0] (row k of the packed tile at k*stride),
// R8 = stride in bytes after the shift. C lanes live in vector
// registers across the whole k sweep — one load and one store per call
// instead of one per k — and R10 holds the semiring zero's BIT PATTERN
// for the per-k skip (a[k] == ±Inf contributes nothing). The skip is a
// plain integer compare on purpose: ±Inf has a unique encoding, so
// MOVQ/CMPQ is exact, and it keeps legacy SSE instructions out of the
// loop — a scalar MOVSD here would partial-write the previous
// iteration's broadcast register and serialize the whole k sweep on
// its merge dependency.

// func minPlusAccum32AVX512(c, a, pk []float64, stride int)
//
// 32 lanes: c[j] = min(c[j], min_k a[k]+pk[k*stride+j]), j < 32.
TEXT ·minPlusAccum32AVX512(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0x7FF0000000000000, R10  // +Inf bit pattern
	VMOVUPD (DI), Z0
	VMOVUPD 64(DI), Z1
	VMOVUPD 128(DI), Z2
	VMOVUPD 192(DI), Z3
	TESTQ CX, CX
	JZ   mp32store
mp32loop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mp32next           // a[k] == +Inf: nothing can improve
	VBROADCASTSD (SI), Z4
	VADDPD  (DX), Z4, Z5
	VADDPD  64(DX), Z4, Z6
	VADDPD  128(DX), Z4, Z7
	VADDPD  192(DX), Z4, Z8
	VMINPD  Z5, Z0, Z0
	VMINPD  Z6, Z1, Z1
	VMINPD  Z7, Z2, Z2
	VMINPD  Z8, Z3, Z3
mp32next:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mp32loop
mp32store:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VZEROUPPER
	RET

// func minPlusAccum2x32AVX512(c0, c1, a0, a1, pk []float64, stride int)
//
// Two C rows per k sweep: each 64-byte tile row is loaded ONCE and
// folded into both rows' accumulators, halving the packed-tile read
// traffic that bounds the single-row kernel, and doubling the number
// of independent VMINPD dependency chains. The per-k skip fires only
// when BOTH a values are +Inf; a lone +Inf row runs unconditionally —
// Inf + tile = Inf and min(acc, Inf) = acc, so the result is bitwise
// identical to skipping it.
TEXT ·minPlusAccum2x32AVX512(SB), NOSPLIT, $0-128
	MOVQ c0_base+0(FP), DI
	MOVQ c1_base+24(FP), R11
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R9
	MOVQ a0_len+56(FP), CX
	MOVQ pk_base+96(FP), DX
	MOVQ stride+120(FP), R8
	SHLQ $3, R8
	MOVQ $0x7FF0000000000000, R10  // +Inf bit pattern
	VMOVUPD (DI), Z0
	VMOVUPD 64(DI), Z1
	VMOVUPD 128(DI), Z2
	VMOVUPD 192(DI), Z3
	VMOVUPD (R11), Z4
	VMOVUPD 64(R11), Z5
	VMOVUPD 128(R11), Z6
	VMOVUPD 192(R11), Z7
	TESTQ CX, CX
	JZ   mp2x32store
mp2x32loop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JNE  mp2x32work
	MOVQ (R9), BX
	CMPQ BX, R10
	JE   mp2x32next         // both rows +Inf: nothing can improve
mp2x32work:
	VBROADCASTSD (SI), Z8
	VBROADCASTSD (R9), Z9
	VMOVUPD (DX), Z10
	VMOVUPD 64(DX), Z11
	VMOVUPD 128(DX), Z12
	VMOVUPD 192(DX), Z13
	VADDPD  Z10, Z8, Z14
	VMINPD  Z14, Z0, Z0
	VADDPD  Z11, Z8, Z15
	VMINPD  Z15, Z1, Z1
	VADDPD  Z12, Z8, Z14
	VMINPD  Z14, Z2, Z2
	VADDPD  Z13, Z8, Z15
	VMINPD  Z15, Z3, Z3
	VADDPD  Z10, Z9, Z14
	VMINPD  Z14, Z4, Z4
	VADDPD  Z11, Z9, Z15
	VMINPD  Z15, Z5, Z5
	VADDPD  Z12, Z9, Z14
	VMINPD  Z14, Z6, Z6
	VADDPD  Z13, Z9, Z15
	VMINPD  Z15, Z7, Z7
mp2x32next:
	ADDQ $8, SI
	ADDQ $8, R9
	ADDQ R8, DX
	DECQ CX
	JNZ  mp2x32loop
mp2x32store:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VMOVUPD Z4, (R11)
	VMOVUPD Z5, 64(R11)
	VMOVUPD Z6, 128(R11)
	VMOVUPD Z7, 192(R11)
	VZEROUPPER
	RET

// func minPlusAccumMaskedAVX512(c, a, pk []float64, stride int)
//
// Masked tail: len(c) ≤ 8 lanes under K1 = (1<<len(c))-1. Masked-out
// lanes load as zero and are never stored.
TEXT ·minPlusAccumMaskedAVX512(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVL $1, AX
	SHLL CX, AX
	DECL AX
	KMOVB AX, K1
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0x7FF0000000000000, R10
	VMOVUPD.Z (DI), K1, Z0
	TESTQ CX, CX
	JZ   mpmstore
mpmloop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mpmnext
	VBROADCASTSD (SI), Z4
	VMOVUPD.Z (DX), K1, Z5
	VADDPD  Z5, Z4, Z5
	VMINPD  Z5, Z0, Z0
mpmnext:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mpmloop
mpmstore:
	VMOVUPD Z0, K1, (DI)
	VZEROUPPER
	RET

// func maxMinAccum32AVX512(c, a, pk []float64, stride int)
//
// Bottleneck semiring, 32 lanes: c[j] = max(c[j], max_k min(a[k], pk)).
TEXT ·maxMinAccum32AVX512(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0xFFF0000000000000, R10  // -Inf bit pattern
	VMOVUPD (DI), Z0
	VMOVUPD 64(DI), Z1
	VMOVUPD 128(DI), Z2
	VMOVUPD 192(DI), Z3
	TESTQ CX, CX
	JZ   mm32store
mm32loop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mm32next           // a[k] == -Inf: min(-Inf, b) never improves
	VBROADCASTSD (SI), Z4
	VMINPD  (DX), Z4, Z5
	VMINPD  64(DX), Z4, Z6
	VMINPD  128(DX), Z4, Z7
	VMINPD  192(DX), Z4, Z8
	VMAXPD  Z5, Z0, Z0
	VMAXPD  Z6, Z1, Z1
	VMAXPD  Z7, Z2, Z2
	VMAXPD  Z8, Z3, Z3
mm32next:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mm32loop
mm32store:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, 128(DI)
	VMOVUPD Z3, 192(DI)
	VZEROUPPER
	RET

// func maxMinAccumMaskedAVX512(c, a, pk []float64, stride int)
TEXT ·maxMinAccumMaskedAVX512(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVL $1, AX
	SHLL CX, AX
	DECL AX
	KMOVB AX, K1
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0xFFF0000000000000, R10
	VMOVUPD.Z (DI), K1, Z0
	TESTQ CX, CX
	JZ   mmmstore
mmmloop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mmmnext
	VBROADCASTSD (SI), Z4
	VMOVUPD.Z (DX), K1, Z5
	VMINPD  Z5, Z4, Z5
	VMAXPD  Z5, Z0, Z0
mmmnext:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mmmloop
mmmstore:
	VMOVUPD Z0, K1, (DI)
	VZEROUPPER
	RET

// func minPlusPathsAccumMaskedAVX512(c []float64, nc []int32, a []float64, na []int32, pk []float64, stride int)
//
// Index-carrying masked kernel: values in Z0, next-hop lanes in Y1
// (8 × int32). Per k: candidates Z5 = a[k] + pk-row; K2 = strict
// improvement mask (LT_OS — no NaNs can occur); values take VMINPD and
// a merge-masked VPBROADCASTD blends hop na[k] into exactly the
// improved lanes. K2 is ANDed with the width mask so garbage in the
// masked-out candidate lanes (loaded as zero) cannot leak a hop. Same
// ascending-k strict-improvement order as the scalar kernel, so hops
// are bitwise identical.
TEXT ·minPlusPathsAccumMaskedAVX512(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVL $1, AX
	SHLL CX, AX
	DECL AX
	KMOVB AX, K1
	MOVQ nc_base+24(FP), R9
	MOVQ a_base+48(FP), SI
	MOVQ a_len+56(FP), CX
	MOVQ na_base+72(FP), R11
	MOVQ pk_base+96(FP), DX
	MOVQ stride+120(FP), R8
	SHLQ $3, R8
	MOVQ $0x7FF0000000000000, R10
	VMOVUPD.Z (DI), K1, Z0
	VMOVDQU32.Z (R9), K1, Y1
	TESTQ CX, CX
	JZ   mppstore
mpploop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mppnext
	VBROADCASTSD (SI), Z4
	VMOVUPD.Z (DX), K1, Z5
	VADDPD  Z5, Z4, Z5
	VCMPPD  $1, Z0, Z5, K2     // K2 = candidate < current (LT_OS)
	KANDB   K1, K2, K2
	VMINPD  Z5, Z0, Z0
	VPBROADCASTD (R11), K2, Y1 // improved lanes inherit hop na[k]
mppnext:
	ADDQ $8, SI
	ADDQ $4, R11
	ADDQ R8, DX
	DECQ CX
	JNZ  mpploop
mppstore:
	VMOVUPD Z0, K1, (DI)
	VMOVDQU32 Y1, K1, (R9)
	VZEROUPPER
	RET

// func maxMinPathsAccumMaskedAVX512(c []float64, nc []int32, a []float64, na []int32, pk []float64, stride int)
TEXT ·maxMinPathsAccumMaskedAVX512(SB), NOSPLIT, $0-128
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVL $1, AX
	SHLL CX, AX
	DECL AX
	KMOVB AX, K1
	MOVQ nc_base+24(FP), R9
	MOVQ a_base+48(FP), SI
	MOVQ a_len+56(FP), CX
	MOVQ na_base+72(FP), R11
	MOVQ pk_base+96(FP), DX
	MOVQ stride+120(FP), R8
	SHLQ $3, R8
	MOVQ $0xFFF0000000000000, R10
	VMOVUPD.Z (DI), K1, Z0
	VMOVDQU32.Z (R9), K1, Y1
	TESTQ CX, CX
	JZ   mmpstore
mmploop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mmpnext
	VBROADCASTSD (SI), Z4
	VMOVUPD.Z (DX), K1, Z5
	VMINPD  Z5, Z4, Z5
	VCMPPD  $0x0E, Z0, Z5, K2  // K2 = candidate > current (GT_OS)
	KANDB   K1, K2, K2
	VMAXPD  Z5, Z0, Z0
	VPBROADCASTD (R11), K2, Y1
mmpnext:
	ADDQ $8, SI
	ADDQ $4, R11
	ADDQ R8, DX
	DECQ CX
	JNZ  mmploop
mmpstore:
	VMOVUPD Z0, K1, (DI)
	VMOVDQU32 Y1, K1, (R9)
	VZEROUPPER
	RET

// func minPlusAccum16AVX2(c, a, pk []float64, stride int)
//
// AVX2 accumulator: 16 lanes (4 YMM), same structure as the 32-lane
// AVX-512 kernel; the Go wrapper peels the scalar tail.
TEXT ·minPlusAccum16AVX2(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0x7FF0000000000000, R10
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	TESTQ CX, CX
	JZ   mp16store
mp16loop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mp16next
	VBROADCASTSD (SI), Y4
	VADDPD  (DX), Y4, Y5
	VADDPD  32(DX), Y4, Y6
	VADDPD  64(DX), Y4, Y7
	VADDPD  96(DX), Y4, Y8
	VMINPD  Y5, Y0, Y0
	VMINPD  Y6, Y1, Y1
	VMINPD  Y7, Y2, Y2
	VMINPD  Y8, Y3, Y3
mp16next:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mp16loop
mp16store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func maxMinAccum16AVX2(c, a, pk []float64, stride int)
TEXT ·maxMinAccum16AVX2(SB), NOSPLIT, $0-80
	MOVQ c_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ pk_base+48(FP), DX
	MOVQ stride+72(FP), R8
	SHLQ $3, R8
	MOVQ $0xFFF0000000000000, R10
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	TESTQ CX, CX
	JZ   mm16store
mm16loop:
	MOVQ (SI), AX
	CMPQ AX, R10
	JE   mm16next
	VBROADCASTSD (SI), Y4
	VMINPD  (DX), Y4, Y5
	VMINPD  32(DX), Y4, Y6
	VMINPD  64(DX), Y4, Y7
	VMINPD  96(DX), Y4, Y8
	VMAXPD  Y5, Y0, Y0
	VMAXPD  Y6, Y1, Y1
	VMAXPD  Y7, Y2, Y2
	VMAXPD  Y8, Y3, Y3
mm16next:
	ADDQ $8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  mm16loop
mm16store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET
