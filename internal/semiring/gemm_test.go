package semiring

import (
	"math/rand"
	"testing"
)

// naiveMinPlus is the reference O(n³) kernel.
func naiveMinPlus(C, A, B Mat) {
	for i := 0; i < C.Rows; i++ {
		for j := 0; j < C.Cols; j++ {
			best := C.At(i, j)
			for k := 0; k < A.Cols; k++ {
				if v := A.At(i, k) + B.At(k, j); v < best {
					best = v
				}
			}
			C.Set(i, j, best)
		}
	}
}

func TestMinPlusMulAddMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 64, 64}, {100, 1, 100}, {5, 200, 5}}
	for _, s := range shapes {
		A := randomMat(rng, s[0], s[1], 0.25)
		B := randomMat(rng, s[1], s[2], 0.25)
		C := randomMat(rng, s[0], s[2], 0.5)
		want := C.Clone()
		naiveMinPlus(want, A, B)
		MinPlusMulAdd(C, A, B)
		if !C.EqualTol(want, 1e-12) {
			t.Fatalf("MinPlusMulAdd mismatch for shape %v", s)
		}
	}
}

func TestMinPlusMulAddTiledPath(t *testing.T) {
	// Force the tiled stream path (dims > GemmSmall, sparse operands)
	// and compare against the frozen reference kernel.
	rng := rand.New(rand.NewSource(4))
	n := DefaultGemmTuning().GemmSmall + 37
	A := randomMat(rng, 40, n, 0.3)
	B := randomMat(rng, n, n, 0.3)
	C1 := randomMat(rng, 40, n, 0.6)
	C2 := C1.Clone()
	MinPlusMulAdd(C1, A, B)
	MinPlusMulAddReference(C2, A, B)
	if !C1.Equal(C2) {
		t.Fatal("adaptive and reference kernels disagree")
	}
}

func TestMinPlusMulIdentity(t *testing.T) {
	// The min-plus identity matrix: 0 diagonal, Inf elsewhere.
	rng := rand.New(rand.NewSource(5))
	n := 12
	A := randomMat(rng, n, n, 0.3)
	I := NewInfMat(n, n)
	for i := 0; i < n; i++ {
		I.Set(i, i, 0)
	}
	if got := MinPlusMul(A, I); !got.Equal(A) {
		t.Error("A ⊗ I must equal A")
	}
	if got := MinPlusMul(I, A); !got.Equal(A) {
		t.Error("I ⊗ A must equal A")
	}
}

func TestMinPlusMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	A := randomMat(rng, 7, 8, 0.2)
	B := randomMat(rng, 8, 9, 0.2)
	C := randomMat(rng, 9, 6, 0.2)
	lhs := MinPlusMul(MinPlusMul(A, B), C)
	rhs := MinPlusMul(A, MinPlusMul(B, C))
	if !lhs.EqualTol(rhs, 1e-9) {
		t.Error("(A⊗B)⊗C must equal A⊗(B⊗C)")
	}
}

func TestMinPlusInPlaceAliasing(t *testing.T) {
	// The panel updates rely on C aliasing A or B being safe when the
	// other operand is a closed matrix with zero diagonal. Verify the
	// in-place result is the true fixpoint P* = D*⊗P where D* is closed.
	rng := rand.New(rand.NewSource(7))
	n, m := 20, 30
	D := randomDist(rng, n, 0.5)
	FloydWarshall(D) // close it
	P := randomMat(rng, n, m, 0.4)
	// Reference: out-of-place multiply (single pass, D closed).
	want := P.Clone()
	tmp := MinPlusMul(D, P)
	EwiseMinInto(want, tmp)
	got := P.Clone()
	MinPlusMulAdd(got, D, got) // C aliases B
	if !got.EqualTol(want, 1e-12) {
		t.Fatal("in-place row panel update (C=B) differs from reference")
	}
	// Column panel: C aliases A.
	Q := randomMat(rng, m, n, 0.4)
	wantQ := Q.Clone()
	tmpQ := MinPlusMul(Q, D)
	EwiseMinInto(wantQ, tmpQ)
	gotQ := Q.Clone()
	MinPlusMulAdd(gotQ, gotQ, D) // C aliases A
	if !gotQ.EqualTol(wantQ, 1e-12) {
		t.Fatal("in-place column panel update (C=A) differs from reference")
	}
}

func TestMinPlusVecMatAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	A := randomMat(rng, 6, 9, 0.2)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.Float64() * 5
	}
	y := make([]float64, 9)
	for j := range y {
		y[j] = Inf
	}
	MinPlusVecMatAdd(y, x, A)
	for j := 0; j < 9; j++ {
		best := Inf
		for k := 0; k < 6; k++ {
			if v := x[k] + A.At(k, j); v < best {
				best = v
			}
		}
		if y[j] != best {
			t.Fatalf("VecMat mismatch at %d", j)
		}
	}
}

func TestEwiseMinInto(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, 5)
	a.Set(0, 1, 1)
	b := NewMat(2, 2)
	b.Set(0, 0, 3)
	b.Set(0, 1, 7)
	EwiseMinInto(a, b)
	if a.At(0, 0) != 3 || a.At(0, 1) != 1 {
		t.Error("elementwise min wrong")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MinPlusMulAdd(NewMat(2, 2), NewMat(2, 3), NewMat(2, 2))
}
