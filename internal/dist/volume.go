package dist

// Analytic communication-volume model: supernodal FW under proportional
// elimination-tree mapping versus blocked FW, with every process owning
// a 1D slice of matrix rows. This is the quantity the paper's
// "communication-avoiding" framing targets: etree locality means most
// eliminations touch data owned by a single process, while dense blocked
// FW rebroadcasts a full panel every iteration.
//
// Model (owner-computes, 1D ownership):
//
//   - SuperFw: supernodes are assigned to processes by proportional
//     mapping — each supernode belongs to the process whose vertex chunk
//     contains its subtree start (so a process owns a maximal run of
//     subtrees, the subtree-to-subcube mapping collapsed to 1D).
//     Eliminating supernode k requires its row and column panels
//     (2·s_k·R_k words) at every distinct process owning part of the
//     reach R(k); each such process other than k's owner receives the
//     panels once.
//
//   - BlockedFw: iteration k broadcasts the pivot row and column
//     (2n words) to the P−1 non-owners; 2n²(P−1) words over n
//     iterations.
//
// Low-level supernodes have reaches owned almost entirely by their own
// process (volume 0), and only the O(√n)-sized separator panels travel —
// that is the communication avoidance.

import (
	"repro/internal/core"
)

// Volume is the modeled communication of one algorithm at one process
// count.
type Volume struct {
	P     int
	Words int64
}

// SuperFWVolume computes the modeled word volume of eliminating the
// plan's supernodes on P processes under proportional subtree mapping.
func SuperFWVolume(plan *core.Plan, P int) Volume {
	sn := plan.SymbolicOnly()
	owner := proportionalMapping(plan, P)
	var words int64
	for k, r := range sn.Ranges {
		s := int64(r.Size())
		reach := int64(0)
		owners := map[int]bool{}
		// Descendants: in postorder they are exactly the supernodes
		// j < k whose range starts at or after SubLo[k].
		for j := k - 1; j >= 0 && sn.Ranges[j].Lo >= sn.SubLo[k]; j-- {
			owners[owner[j]] = true
			reach += int64(sn.Ranges[j].Size())
		}
		for _, a := range sn.Ancestors(k) {
			owners[owner[a]] = true
			reach += int64(sn.Ranges[a].Size())
		}
		delete(owners, owner[k])
		words += int64(len(owners)) * 2 * s * reach
	}
	return Volume{P: P, Words: words}
}

// proportionalMapping assigns each supernode to the process whose vertex
// chunk contains its subtree start.
func proportionalMapping(plan *core.Plan, P int) []int {
	sn := plan.SymbolicOnly()
	n := plan.G.N
	owner := make([]int, sn.NumSupernodes())
	chunk := (n + P - 1) / P
	for k := range sn.Ranges {
		q := sn.SubLo[k] / chunk
		if q >= P {
			q = P - 1
		}
		owner[k] = q
	}
	return owner
}

// BlockedFWVolume returns the modeled word volume of dense blocked FW on
// P processes with 1D row ownership: every iteration ships the pivot row
// and column to every non-owner.
func BlockedFWVolume(n, P int) Volume {
	if P <= 1 {
		return Volume{P: P, Words: 0}
	}
	return Volume{P: P, Words: 2 * int64(n) * int64(n) * int64(P-1)}
}
