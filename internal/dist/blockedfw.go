// Package dist simulates distributed-memory execution of the APSP
// algorithms, the deployment model the paper's §6 sketches ("most
// distributed algorithms rely on some form of etree parallelism for
// reducing communication") and its "communication-avoiding algorithms"
// keyword promises.
//
// Two artifacts:
//
//   - An EXECUTABLE distributed blocked Floyd-Warshall: P processes run
//     as goroutines, each owning a 2D block-cyclic shard of the matrix;
//     all data movement goes through Go channels and is metered. This
//     validates the distributed algorithm end-to-end (the result is
//     checked against the sequential solver in tests) and measures real
//     message/word counts rather than modeled ones.
//
//   - An ANALYTIC communication-volume model comparing BlockedFw with
//     supernodal FW under proportional elimination-tree mapping
//     (SuperFWVolume / BlockedFWVolume) — the quantity distributed
//     sparse solvers optimize.
package dist

import (
	"fmt"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/semiring"
)

// CommStats aggregates the communication of one distributed run.
type CommStats struct {
	// Messages is the number of point-to-point sends.
	Messages int64
	// Words is the number of float64 values moved.
	Words int64
}

// BlockedFW runs the blocked Floyd-Warshall algorithm on a pr×pc process
// grid with block size b. The input matrix is scattered block-cyclically
// (block (I,J) lives on process (I mod pr, J mod pc)), each process is a
// goroutine exchanging panels over channels, and the closed matrix is
// gathered back. Returns the result and the measured communication.
//
// Per iteration k the schedule is the textbook 2D one: the diagonal
// owner closes A(k,k) and broadcasts it along its process row and
// column; row-k owners update their panels and broadcast them down
// their process columns; column-k owners symmetrically across rows;
// every process then updates its local trailing blocks.
func BlockedFW(A semiring.Mat, b, pr, pc int) (semiring.Mat, CommStats, error) {
	n := A.Rows
	if A.Cols != n {
		return semiring.Mat{}, CommStats{}, fmt.Errorf("dist: matrix must be square")
	}
	if b <= 0 || pr <= 0 || pc <= 0 {
		return semiring.Mat{}, CommStats{}, fmt.Errorf("dist: invalid grid %dx%d block %d", pr, pc, b)
	}
	nb := (n + b - 1) / b
	g := &grid{n: n, b: b, nb: nb, pr: pr, pc: pc}
	// Per-process mailboxes, one channel per (process, tag) would be
	// heavyweight; use one buffered channel per process and match tags.
	procs := make([]*process, pr*pc)
	for p := range procs {
		procs[p] = &process{
			id:    p,
			g:     g,
			inbox: make(chan packet, 4*nb+16),
			local: map[blockID]semiring.Mat{},
		}
	}
	g.procs = procs
	// Scatter.
	for I := 0; I < nb; I++ {
		for J := 0; J < nb; J++ {
			r0, rs := g.blk(I)
			c0, cs := g.blk(J)
			owner := g.owner(I, J)
			m := semiring.NewMat(rs, cs)
			m.Copy(A.View(r0, c0, rs, cs))
			procs[owner].local[blockID{I, J}] = m
		}
	}
	// Run. Every rank must execute concurrently (they exchange blocks
	// through their inboxes mid-superstep), so the group is sized to the
	// process grid; Group containment turns a rank panic into a
	// *TaskPanic naming the rank instead of an anonymous process crash.
	grp := par.NewGroup(len(procs))
	for _, p := range procs {
		grp.Go(p.run)
	}
	grp.Wait()
	// Gather.
	out := semiring.NewMat(n, n)
	for _, p := range procs {
		for id, m := range p.local {
			r0, rs := g.blk(id.I)
			c0, cs := g.blk(id.J)
			out.View(r0, c0, rs, cs).Copy(m)
		}
	}
	return out, CommStats{Messages: g.messages.Load(), Words: g.words.Load()}, nil
}

type blockID struct{ I, J int }

type packet struct {
	k    int // iteration tag
	id   blockID
	data semiring.Mat
}

type grid struct {
	n, b, nb, pr, pc int
	procs            []*process
	messages         atomic.Int64
	words            atomic.Int64
}

// blk returns the global offset and size of block index I.
func (g *grid) blk(I int) (int, int) {
	lo := I * g.b
	hi := lo + g.b
	if hi > g.n {
		hi = g.n
	}
	return lo, hi - lo
}

// owner returns the linear process id owning block (I, J).
func (g *grid) owner(I, J int) int { return (I%g.pr)*g.pc + (J % g.pc) }

// row/col of a linear process id.
func (g *grid) procRow(p int) int { return p / g.pc }
func (g *grid) procCol(p int) int { return p % g.pc }

type process struct {
	id    int
	g     *grid
	inbox chan packet
	local map[blockID]semiring.Mat
	// held buffers packets that arrived ahead of the iteration that
	// consumes them (channels are FIFO per sender but cross-sender
	// ordering is arbitrary).
	held []packet
}

// send transmits a copy of a block to process q (self-sends are local
// and free, like a real MPI rank reading its own memory).
func (p *process) send(q, k int, id blockID, m semiring.Mat) {
	if q == p.id {
		return
	}
	p.g.messages.Add(1)
	p.g.words.Add(int64(m.Rows * m.Cols))
	p.g.procs[q].inbox <- packet{k: k, id: id, data: m.Clone()}
}

// recv blocks until the packet for (k, id) arrives.
func (p *process) recv(k int, id blockID) semiring.Mat {
	for i, h := range p.held {
		if h.k == k && h.id == id {
			p.held = append(p.held[:i], p.held[i+1:]...)
			return h.data
		}
	}
	for pkt := range p.inbox {
		if pkt.k == k && pkt.id == id {
			return pkt.data
		}
		p.held = append(p.held, pkt)
	}
	panic("dist: inbox closed")
}

// rowPeers returns the linear ids of every process in p's grid row;
// colPeers likewise for its grid column.
func (p *process) rowPeers() []int {
	r := p.g.procRow(p.id)
	out := make([]int, 0, p.g.pc)
	for c := 0; c < p.g.pc; c++ {
		out = append(out, r*p.g.pc+c)
	}
	return out
}

func (p *process) colPeers() []int {
	c := p.g.procCol(p.id)
	out := make([]int, 0, p.g.pr)
	for r := 0; r < p.g.pr; r++ {
		out = append(out, r*p.g.pc+c)
	}
	return out
}

// run executes the process's share of every iteration.
func (p *process) run() {
	g := p.g
	for k := 0; k < g.nb; k++ {
		diagID := blockID{k, k}
		diagOwner := g.owner(k, k)
		inRowK := g.procRow(p.id) == k%g.pr // owns some (k, j) blocks
		inColK := g.procCol(p.id) == k%g.pc // owns some (i, k) blocks
		needDiag := inRowK || inColK

		var Akk semiring.Mat
		if p.id == diagOwner {
			Akk = p.local[diagID]
			semiring.FloydWarshall(Akk)
			// Broadcast the closed diagonal along the process row and
			// column (the only processes that apply panel updates).
			seen := map[int]bool{p.id: true}
			for _, q := range p.rowPeers() {
				if !seen[q] {
					seen[q] = true
					p.send(q, k, diagID, Akk)
				}
			}
			for _, q := range p.colPeers() {
				if !seen[q] {
					seen[q] = true
					p.send(q, k, diagID, Akk)
				}
			}
		} else if needDiag {
			Akk = p.recv(k, diagID)
		}

		// Panel updates, then broadcast each updated panel block to the
		// processes that need it for the outer product: block (k, J)
		// goes down process column J%pc; block (I, k) across process
		// row I%pr. The Serial kernel variants keep each multiply pinned
		// to this rank's goroutine — the simulated processes ARE the
		// parallelism here, so the engine's i-range sharding would only
		// oversubscribe the host.
		if inRowK {
			for J := 0; J < g.nb; J++ {
				if J == k {
					continue
				}
				id := blockID{k, J}
				if m, ok := p.local[id]; ok {
					//lint:ignore aliascheck in-place panel update against the closed zero-diagonal A(k,k) is the blocked-FW algorithm
					semiring.MinPlusMulAddSerial(m, Akk, m)
					for r := 0; r < g.pr; r++ {
						p.send(r*g.pc+g.procCol(p.id), k, id, m)
					}
				}
			}
		}
		if inColK {
			for I := 0; I < g.nb; I++ {
				if I == k {
					continue
				}
				id := blockID{I, k}
				if m, ok := p.local[id]; ok {
					//lint:ignore aliascheck symmetric in-place column-panel update against the closed zero-diagonal block
					semiring.MinPlusMulAddSerial(m, m, Akk)
					for c := 0; c < g.pc; c++ {
						p.send(g.procRow(p.id)*g.pc+c, k, id, m)
					}
				}
			}
		}

		// Outer product on local trailing blocks: A(I,J) needs A(I,k)
		// (same grid row) and A(k,J) (same grid column). Each A(k,J)
		// panel feeds every local block in column J, so the fused path
		// packs it once on first use and streams the remaining updates
		// over the packed tiles (MulAddPacked is serial, matching the
		// rank-pinned Serial kernels used here).
		rowCache := map[int]semiring.Mat{}           // J -> A(k,J)
		colCache := map[int]semiring.Mat{}           // I -> A(I,k)
		packCache := map[int]*semiring.PackedPanel{} // J -> packed A(k,J)
		for id, m := range p.local {
			if id.I == k || id.J == k {
				continue
			}
			Aik, ok := colCache[id.I]
			if !ok {
				if g.owner(id.I, k) == p.id {
					Aik = p.local[blockID{id.I, k}]
				} else {
					Aik = p.recv(k, blockID{id.I, k})
				}
				colCache[id.I] = Aik
			}
			Akj, ok := rowCache[id.J]
			if !ok {
				if g.owner(k, id.J) == p.id {
					Akj = p.local[blockID{k, id.J}]
				} else {
					Akj = p.recv(k, blockID{k, id.J})
				}
				rowCache[id.J] = Akj
				packCache[id.J] = semiring.PackPanel(Akj, semiring.Inf)
			}
			semiring.MinPlusMulAddPacked(m, Aik, packCache[id.J])
		}
		for _, pk := range packCache {
			pk.Release()
		}
		// Drain panel packets addressed to this iteration that we did
		// not end up consuming (broadcasts are unconditional): they are
		// in held or inbox; collect everything tagged k so later
		// iterations never see stale packets.
		p.drain(k, rowCache, colCache)
	}
}

// drain consumes any not-yet-received iteration-k packets destined to
// this process, so the inbox never backs up. The expected count is
// derived from the broadcast schedule: every (k,J) panel whose owner is
// in this process's grid column sends one copy to each process in that
// column, and symmetrically for (I,k) panels; plus the diagonal if this
// process needed it.
func (p *process) drain(k int, rowCache map[int]semiring.Mat, colCache map[int]semiring.Mat) {
	g := p.g
	expect := 0
	// A(k, J) blocks arriving from the row-k process in our column.
	for J := 0; J < g.nb; J++ {
		if J == k || g.procCol(p.id) != J%g.pc {
			continue
		}
		if g.owner(k, J) != p.id {
			expect++
		}
	}
	for I := 0; I < g.nb; I++ {
		if I == k || g.procRow(p.id) != I%g.pr {
			continue
		}
		if g.owner(I, k) != p.id {
			expect++
		}
	}
	got := 0
	for _, c := range [2]map[int]semiring.Mat{rowCache, colCache} {
		for range c {
			got++
		}
	}
	// Subtract locally-satisfied cache entries.
	for I := range colCache {
		if g.owner(I, k) == p.id {
			got--
		}
	}
	for J := range rowCache {
		if g.owner(k, J) == p.id {
			got--
		}
	}
	for got < expect {
		// Unconsumed k-packets may already be parked in held (they
		// arrived while recv was matching something else).
		found := false
		for i, h := range p.held {
			if h.k == k {
				p.held = append(p.held[:i], p.held[i+1:]...)
				got++
				found = true
				break
			}
		}
		if found {
			continue
		}
		pkt := <-p.inbox
		if pkt.k == k {
			got++
		} else {
			p.held = append(p.held, pkt)
		}
	}
}
