package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/semiring"
)

func TestBlockedFWDistMatchesSequential(t *testing.T) {
	graphs := []struct {
		name string
		n    int
		A    semiring.Mat
	}{
		{"geo", 0, gen.GeometricKNN(90, 2, 3, gen.WeightUniform, 1).ToDense()},
		{"er", 0, gen.ErdosRenyi(64, 5, gen.WeightUniform, 2).ToDense()},
		{"grid", 0, gen.Grid2D(8, 8, gen.WeightUniform, 3).ToDense()},
	}
	grids := [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {4, 4}}
	for _, tc := range graphs {
		want := tc.A.Clone()
		semiring.FloydWarshall(want)
		for _, pg := range grids {
			for _, b := range []int{8, 16, 37} {
				got, stats, err := BlockedFW(tc.A, b, pg[0], pg[1])
				if err != nil {
					t.Fatalf("%s %v b=%d: %v", tc.name, pg, b, err)
				}
				if !got.EqualTol(want, 1e-12) {
					t.Fatalf("%s grid=%v b=%d: distributed result differs", tc.name, pg, b)
				}
				if pg[0]*pg[1] == 1 && stats.Messages != 0 {
					t.Errorf("single process should not communicate, got %d msgs", stats.Messages)
				}
				if pg[0]*pg[1] > 1 && stats.Messages == 0 {
					t.Errorf("%s grid=%v: no communication recorded", tc.name, pg)
				}
			}
		}
	}
}

func TestBlockedFWDistCommGrowsWithP(t *testing.T) {
	A := gen.GeometricKNN(80, 2, 3, gen.WeightUniform, 4).ToDense()
	_, s2, err := BlockedFW(A, 16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := BlockedFW(A, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Words <= s2.Words {
		t.Errorf("4-process volume %d should exceed 2-process %d", s4.Words, s2.Words)
	}
}

func TestBlockedFWDistErrors(t *testing.T) {
	A := semiring.NewMat(4, 5)
	if _, _, err := BlockedFW(A, 2, 1, 1); err == nil {
		t.Error("non-square must error")
	}
	B := semiring.NewMat(4, 4)
	if _, _, err := BlockedFW(B, 0, 1, 1); err == nil {
		t.Error("bad block size must error")
	}
	if _, _, err := BlockedFW(B, 2, 0, 2); err == nil {
		t.Error("bad grid must error")
	}
}

func TestSuperFWVolumeBeatsBlockedOnGrid(t *testing.T) {
	// On a planar graph the supernodal volume must be far below dense
	// blocked FW's 2n²(P−1) for meaningful P.
	g := gen.Grid2D(32, 32, gen.WeightUniform, 5)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{4, 16, 64} {
		sv := SuperFWVolume(plan, P)
		bv := BlockedFWVolume(g.N, P)
		if sv.Words <= 0 {
			t.Fatalf("P=%d: supernodal volume should be positive, got %d", P, sv.Words)
		}
		if sv.Words*4 >= bv.Words {
			t.Errorf("P=%d: supernodal volume %d not clearly below blocked %d", P, sv.Words, bv.Words)
		}
	}
}

func TestSuperFWVolumeMonotoneInP(t *testing.T) {
	g := gen.GeometricKNN(600, 2, 3, gen.WeightUniform, 6)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, P := range []int{1, 2, 4, 8, 16} {
		v := SuperFWVolume(plan, P)
		if v.Words < prev {
			// Volume can plateau but should not decrease when more
			// processes split the reach sets.
			t.Errorf("volume decreased from %d to %d at P=%d", prev, v.Words, P)
		}
		prev = v.Words
	}
	if v := SuperFWVolume(plan, 1); v.Words != 0 {
		t.Errorf("single process should need no communication, got %d", v.Words)
	}
}
