package analytics

import (
	"math"
	"testing"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// pathClosure returns the APSP closure of a unit-weight path of n
// vertices: D[i][j] = |i−j|.
func pathClosure(n int) semiring.Mat {
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	return apsp.NaiveFW(graph.MustFromEdges(n, edges))
}

func TestEccentricityPath(t *testing.T) {
	D := pathClosure(5)
	ecc := Eccentricity(D, 2)
	want := []float64{4, 3, 2, 3, 4}
	for i := range want {
		if ecc[i] != want[i] {
			t.Fatalf("ecc[%d] = %g, want %g", i, ecc[i], want[i])
		}
	}
}

func TestDiameterRadiusPath(t *testing.T) {
	D := pathClosure(7)
	dia, rad := DiameterRadius(D, 1)
	if dia != 6 || rad != 3 {
		t.Fatalf("diameter=%g radius=%g, want 6 and 3", dia, rad)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	// Two paths of 3 and 2 vertices: diameter 2 (within the larger
	// component), radius 1 (middle of the P3 or either end of the P2).
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 1}})
	D := apsp.NaiveFW(g)
	dia, rad := DiameterRadius(D, 1)
	if dia != 2 || rad != 1 {
		t.Fatalf("diameter=%g radius=%g, want 2 and 1", dia, rad)
	}
	// Isolated vertex: excluded, not poisoning.
	g2 := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}})
	dia2, rad2 := DiameterRadius(apsp.NaiveFW(g2), 1)
	if dia2 != 5 || rad2 != 5 {
		t.Fatalf("isolated vertex skewed results: %g %g", dia2, rad2)
	}
}

func TestClosenessStar(t *testing.T) {
	// Star: the hub has the highest closeness.
	var edges []graph.Edge
	for i := 1; i < 8; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
	}
	D := apsp.NaiveFW(graph.MustFromEdges(8, edges))
	if MostCentral(D, 2) != 0 {
		t.Fatal("hub should be most central")
	}
	c := Closeness(D, 1)
	if math.Abs(c[0]-7) > 1e-12 { // 7 neighbors at distance 1
		t.Fatalf("hub closeness %g, want 7", c[0])
	}
	if math.Abs(c[1]-(1+6*0.5)) > 1e-12 { // 1 hub + 6 leaves at distance 2
		t.Fatalf("leaf closeness %g, want 4", c[1])
	}
}

func TestWienerIndexPath(t *testing.T) {
	// P4: pairs (1+2+3) + (1+2) + 1 = 10.
	if w := WienerIndex(pathClosure(4)); w != 10 {
		t.Fatalf("Wiener = %g, want 10", w)
	}
	// Disconnected pairs contribute nothing.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1, W: 2}})
	if w := WienerIndex(apsp.NaiveFW(g)); w != 2 {
		t.Fatalf("Wiener = %g, want 2", w)
	}
}

func TestReachableWithin(t *testing.T) {
	D := pathClosure(10)
	got := ReachableWithin(D, 0, []float64{0.5, 1, 3.5, 100})
	want := []int{0, 1, 3, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budget %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDistanceHistogram(t *testing.T) {
	D := pathClosure(5)
	edges, counts := DistanceHistogram(D, 4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatal("histogram shape wrong")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 10 { // C(5,2) finite pairs
		t.Fatalf("histogram covers %d pairs, want 10", total)
	}
	if edges[4] != 4 { // diameter
		t.Fatalf("last edge %g, want diameter 4", edges[4])
	}
}

func TestAnalyticsOnRealGraph(t *testing.T) {
	// Cross-validate diameter against eccentricity max on a geometric
	// graph solved with the production solver path.
	g := gen.GeometricKNN(150, 2, 4, gen.WeightEuclidean, 95)
	D, err := apsp.Run(apsp.AlgoSuperFW, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dia, rad := DiameterRadius(D, 2)
	if rad > dia {
		t.Fatal("radius exceeds diameter")
	}
	ecc := Eccentricity(D, 2)
	worst := 0.0
	for _, e := range ecc {
		if e > worst {
			worst = e
		}
	}
	if worst != dia {
		t.Fatal("diameter must equal max eccentricity")
	}
}
