// Package analytics derives standard graph measures from all-pairs
// shortest path results: eccentricity, diameter and radius, closeness
// centrality, the Wiener index, and hop-limited reachability — the
// downstream consumers that motivate computing APSP at all (the paper's
// introduction cites path analysis workloads).
//
// All functions accept the distance matrix in original vertex order
// (superfw.Result.Dense() or any baseline's output) and treat +Inf as
// unreachable; vertices outside the queried vertex's component are
// excluded from averages rather than poisoning them.
package analytics

import (
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/semiring"
)

// Eccentricity returns, for every vertex, the largest finite distance to
// any vertex it can reach (0 for isolated vertices).
func Eccentricity(D semiring.Mat, threads int) []float64 {
	out := make([]float64, D.Rows)
	par.ForRanges(D.Rows, threads, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			worst := 0.0
			for _, d := range D.Row(i) {
				if !math.IsInf(d, 1) && d > worst {
					worst = d
				}
			}
			out[i] = worst
		}
	})
	return out
}

// DiameterRadius returns the largest and smallest eccentricities over
// vertices that reach at least one other vertex. For disconnected graphs
// this is the max/min over components' internal eccentricities.
func DiameterRadius(D semiring.Mat, threads int) (diameter, radius float64) {
	ecc := Eccentricity(D, threads)
	radius = math.Inf(1)
	for i, e := range ecc {
		if reachesAnyone(D, i) {
			if e > diameter {
				diameter = e
			}
			if e < radius {
				radius = e
			}
		}
	}
	if math.IsInf(radius, 1) {
		radius = 0
	}
	return diameter, radius
}

func reachesAnyone(D semiring.Mat, i int) bool {
	for j, d := range D.Row(i) {
		if j != i && !math.IsInf(d, 1) {
			return true
		}
	}
	return false
}

// Closeness returns the harmonic closeness centrality of every vertex:
// C(u) = Σ_{v≠u, reachable} 1/d(u,v). The harmonic form handles
// disconnected graphs gracefully (unreachable vertices contribute 0).
func Closeness(D semiring.Mat, threads int) []float64 {
	out := make([]float64, D.Rows)
	par.ForRanges(D.Rows, threads, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			for j, d := range D.Row(i) {
				if j != i && !math.IsInf(d, 1) && d > 0 {
					sum += 1 / d
				}
			}
			out[i] = sum
		}
	})
	return out
}

// MostCentral returns the index of the vertex with the highest harmonic
// closeness, breaking ties toward the lower index.
func MostCentral(D semiring.Mat, threads int) int {
	c := Closeness(D, threads)
	best := 0
	for i, v := range c {
		if v > c[best] {
			best = i
		}
	}
	return best
}

// WienerIndex returns the sum of distances over all unordered reachable
// pairs — a topological descriptor from chemistry, and a quick global
// sanity statistic for APSP results.
func WienerIndex(D semiring.Mat) float64 {
	sum := 0.0
	for i := 0; i < D.Rows; i++ {
		row := D.Row(i)
		for j := i + 1; j < D.Cols; j++ {
			if !math.IsInf(row[j], 1) {
				sum += row[j]
			}
		}
	}
	return sum
}

// ReachableWithin returns, for the given vertex, how many vertices lie
// within each of the given distance budgets (budgets must be ascending).
func ReachableWithin(D semiring.Mat, u int, budgets []float64) []int {
	ds := make([]float64, 0, D.Cols-1)
	for j, d := range D.Row(u) {
		if j != u && !math.IsInf(d, 1) {
			ds = append(ds, d)
		}
	}
	sort.Float64s(ds)
	out := make([]int, len(budgets))
	for i, b := range budgets {
		out[i] = sort.SearchFloat64s(ds, math.Nextafter(b, math.Inf(1)))
	}
	return out
}

// DistanceHistogram buckets all finite pairwise distances into the given
// number of equal-width bins between 0 and the diameter, returning the
// bin edges and counts. Useful for comparing graph classes' distance
// distributions (e.g. road networks vs expanders).
func DistanceHistogram(D semiring.Mat, bins int) (edges []float64, counts []int64) {
	diameter, _ := DiameterRadius(D, 0)
	if bins <= 0 || diameter <= 0 {
		return nil, nil
	}
	edges = make([]float64, bins+1)
	for i := range edges {
		edges[i] = diameter * float64(i) / float64(bins)
	}
	counts = make([]int64, bins)
	for i := 0; i < D.Rows; i++ {
		row := D.Row(i)
		for j := i + 1; j < D.Cols; j++ {
			d := row[j]
			if math.IsInf(d, 1) {
				continue
			}
			b := int(d / diameter * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
	}
	return edges, counts
}
