package superfw

// Automatic algorithm selection — the paper's practical takeaway
// operationalized. Its evaluation (and our crossover experiment) shows
// SuperFw wins when the separator is small and Dijkstra wins when it is
// not; the symbolic phase computes everything needed to make that call
// before any numeric work: the exact fused-op count of the supernodal
// elimination versus a calibrated cost model of Dijkstra-per-source.

import (
	"fmt"
	"math"

	"repro/internal/apsp"
	"repro/internal/core"
)

// Choice records what Auto decided and why.
type Choice struct {
	// Algorithm is "superfw" or "dijkstra".
	Algorithm string
	// SuperFwOps is the plan's exact fused-op count.
	SuperFwOps int64
	// DijkstraOps is the modeled comparison-op count of n Dijkstra runs.
	DijkstraOps int64
	// SepRatio is n/|S| (0 when no separator was found).
	SepRatio float64
}

func (c Choice) String() string {
	return fmt.Sprintf("chose %s (superfw ops %d vs dijkstra model %d, n/|S| = %.1f)",
		c.Algorithm, c.SuperFwOps, c.DijkstraOps, c.SepRatio)
}

// dijkstraCostModel estimates the fused comparison ops of running a
// binary-heap Dijkstra from every source: n · (m + n)·log₂n heap work.
// The constant was calibrated against the crossover experiment: min-plus
// fused ops run ~3× faster per op than heap operations (contiguous
// streaming vs pointer-chasing), so Dijkstra ops are charged 3×.
func dijkstraCostModel(n, m int) int64 {
	logn := math.Log2(float64(n) + 2)
	return int64(3 * float64(n) * (float64(2*m) + float64(n)) * logn)
}

// Auto solves APSP with whichever of SuperFw and Dijkstra-per-source the
// symbolic analysis predicts to be faster on this graph, returning the
// distance matrix in original vertex order and the decision record.
// Requires non-negative weights (the Dijkstra arm); use Solve directly
// for negative-arc instances.
func Auto(g *Graph, threads int) (Mat, Choice, error) {
	if g.HasNegativeWeights() {
		return Mat{}, Choice{}, fmt.Errorf("superfw: Auto requires non-negative weights (use Solve)")
	}
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		return Mat{}, Choice{}, err
	}
	c := Choice{
		SuperFwOps:  plan.PlannedOps(),
		DijkstraOps: dijkstraCostModel(g.N, g.M()),
	}
	if plan.TopSep > 0 {
		c.SepRatio = float64(g.N) / float64(plan.TopSep)
	}
	if c.SuperFwOps <= c.DijkstraOps {
		c.Algorithm = "superfw"
		res, err := plan.SolveWith(threads, true)
		if err != nil {
			return Mat{}, c, err
		}
		return res.Dense(), c, nil
	}
	c.Algorithm = "dijkstra"
	D, err := apsp.Dijkstra(g, threads)
	return D, c, err
}
